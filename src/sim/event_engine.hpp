#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <vector>

namespace move::obs {
class Registry;
}

/// Discrete-event simulation core.
///
/// The cluster benches replay the paper's experiments in virtual time: the
/// engine orders events on a virtual clock (microseconds), and each logical
/// node is a serial FIFO server (`FifoServer`) — the paper's model of a
/// disk-bound matcher that serves one document at a time. Results are
/// deterministic and independent of host load, unlike wall-clock timing.
namespace move::sim {

/// Virtual time in microseconds.
using Time = double;

class EventEngine {
 public:
  using Callback = std::function<void()>;

  EventEngine() = default;

  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `t` (clamped to now if in the past).
  /// Events at equal times fire in scheduling order (stable).
  void schedule_at(Time t, Callback cb);

  /// Schedules `cb` `delay_us` after the current time.
  void schedule_after(Time delay_us, Callback cb) {
    schedule_at(now_ + delay_us, std::move(cb));
  }

  /// Runs events until the queue drains. Returns the final clock value.
  Time run();

  /// Runs events with time <= horizon; later events stay queued.
  Time run_until(Time horizon);

  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }
  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }

  /// Exports `sim.engine.events_processed` and `sim.engine.virtual_now_us`
  /// gauges (snapshot semantics; see DESIGN.md "Metrics naming").
  void export_metrics(obs::Registry& registry) const;

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.at > b.at || (a.at == b.at && a.seq > b.seq);
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// A serial FIFO service station — one per simulated node. Jobs submitted
/// while the server is busy queue behind it; this is what turns a hot-spot
/// node into the cluster's throughput bottleneck, exactly the effect MOVE's
/// allocation is designed to remove.
///
/// Congestion model: real storage nodes degrade under backlog (memtable
/// flushes, compaction, page-cache misses), which is why the paper's
/// throughput *falls* as the injected batch grows (Fig. 8b) instead of
/// saturating. With a non-zero `congestion_coeff`, a job's service time is
/// inflated by (1 + coeff * queue_wait_seconds) — deterministic, and zero
/// overhead when disabled.
class FifoServer {
 public:
  explicit FifoServer(EventEngine& engine) : engine_(&engine) {}

  /// Service-time inflation per second of queueing delay (0 = ideal server)
  /// and the cap on the total inflation (a throttled real node degrades to
  /// a floor rate rather than collapsing).
  void set_congestion(double coeff, double max_inflation) noexcept {
    congestion_coeff_ = coeff;
    congestion_cap_ = max_inflation;
  }
  [[nodiscard]] double congestion_coeff() const noexcept {
    return congestion_coeff_;
  }

  /// Submits a job arriving *now* that needs `service_us` of server time.
  /// `on_done` fires at the job's completion time.
  void submit(Time service_us, std::function<void(Time)> on_done);

  /// Total service time performed (the node's busy time).
  [[nodiscard]] Time busy_us() const noexcept { return busy_us_; }
  /// Total time jobs spent waiting in queue before service began.
  [[nodiscard]] Time queue_wait_us() const noexcept { return wait_us_; }
  [[nodiscard]] std::uint64_t jobs_served() const noexcept { return jobs_; }
  /// Time at which the server becomes free given current commitments.
  [[nodiscard]] Time free_at() const noexcept { return free_at_; }

  /// Jobs in the system (queued + in service) at virtual time `now`.
  [[nodiscard]] std::size_t queue_depth(Time now) const noexcept;
  /// Peak jobs-in-system observed at any submission instant — the paper's
  /// bottleneck-node signal (a balanced scheme keeps every node's peak low).
  [[nodiscard]] std::uint64_t max_queue_depth() const noexcept {
    return max_depth_;
  }

  void reset() noexcept {
    free_at_ = 0;
    busy_us_ = 0;
    wait_us_ = 0;
    jobs_ = 0;
    max_depth_ = 0;
    pending_.clear();
  }

 private:
  EventEngine* engine_;
  double congestion_coeff_ = 0.0;
  double congestion_cap_ = 12.0;
  Time free_at_ = 0;
  Time busy_us_ = 0;
  Time wait_us_ = 0;
  std::uint64_t jobs_ = 0;
  std::uint64_t max_depth_ = 0;
  // Completion times of jobs not yet finished at the last submit (FIFO ->
  // nondecreasing, so expiry is a pop from the front; plain integers/deque,
  // no atomics: the simulated path is single-threaded by construction).
  std::deque<Time> pending_;
};

}  // namespace move::sim
