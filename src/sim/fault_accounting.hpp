#pragma once

#include <cstdint>

/// Failure-path accounting shared by the routing, handoff, and repair
/// machinery. Plain integers (the simulated path is single-threaded);
/// accumulated on the Cluster across a run and snapshotted as a delta into
/// RunMetrics, exactly like MatchAccounting. Header-only and dependency-free
/// so the kv layer can report into it without linking the simulator.
namespace move::sim {

struct FaultAccounting {
  /// Term groups (or flooded targets) for which no live serving node was
  /// found within the bounded failover walk — their matches are lost.
  std::uint64_t failed_routes = 0;
  /// Candidate nodes examined beyond the primary target during failover.
  std::uint64_t route_retries = 0;
  /// Contacts sent to a node believed alive that was actually dead — the
  /// failure detector's lag, each charged a routing timeout.
  std::uint64_t dead_contacts = 0;
  /// Term services completed on a non-primary node (ring successor or a
  /// substitute grid row) after the primary was unavailable.
  std::uint64_t failovers = 0;
  /// Hinted-handoff writes parked on stand-in nodes / later delivered.
  std::uint64_t hints_parked = 0;
  std::uint64_t hints_drained = 0;
  /// Posting entries re-registered by the repair pipeline (re-replication).
  std::uint64_t repair_postings_moved = 0;

  FaultAccounting& operator+=(const FaultAccounting& o) noexcept {
    failed_routes += o.failed_routes;
    route_retries += o.route_retries;
    dead_contacts += o.dead_contacts;
    failovers += o.failovers;
    hints_parked += o.hints_parked;
    hints_drained += o.hints_drained;
    repair_postings_moved += o.repair_postings_moved;
    return *this;
  }
  /// Element-wise delta (for before/after run snapshots).
  [[nodiscard]] FaultAccounting delta_since(
      const FaultAccounting& before) const noexcept {
    FaultAccounting d;
    d.failed_routes = failed_routes - before.failed_routes;
    d.route_retries = route_retries - before.route_retries;
    d.dead_contacts = dead_contacts - before.dead_contacts;
    d.failovers = failovers - before.failovers;
    d.hints_parked = hints_parked - before.hints_parked;
    d.hints_drained = hints_drained - before.hints_drained;
    d.repair_postings_moved =
        repair_postings_moved - before.repair_postings_moved;
    return d;
  }
};

}  // namespace move::sim
