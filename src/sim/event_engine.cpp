#include "sim/event_engine.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace move::sim {

void EventEngine::export_metrics(obs::Registry& registry) const {
  registry.gauge("sim.engine.events_processed")
      .set(static_cast<double>(processed_));
  registry.gauge("sim.engine.virtual_now_us").set(now_);
}

void EventEngine::schedule_at(Time t, Callback cb) {
  queue_.push(Event{std::max(t, now_), next_seq_++, std::move(cb)});
}

Time EventEngine::run() {
  while (!queue_.empty()) {
    // Moving out of a priority_queue requires const_cast of top(); copy the
    // metadata first, then pop before invoking so callbacks can schedule.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ++processed_;
    ev.cb();
  }
  return now_;
}

Time EventEngine::run_until(Time horizon) {
  while (!queue_.empty() && queue_.top().at <= horizon) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ++processed_;
    ev.cb();
  }
  now_ = std::max(now_, horizon);
  return now_;
}

std::size_t FifoServer::queue_depth(Time now) const noexcept {
  std::size_t depth = 0;
  for (auto it = pending_.rbegin(); it != pending_.rend() && *it > now; ++it) {
    ++depth;
  }
  return depth;
}

void FifoServer::submit(Time service_us, std::function<void(Time)> on_done) {
  const Time arrival = engine_->now();
  const Time start = std::max(arrival, free_at_);
  const Time wait = start - arrival;
  if (congestion_coeff_ > 0.0) {
    service_us *=
        std::min(congestion_cap_, 1.0 + congestion_coeff_ * (wait / 1e6));
  }
  const Time completion = start + service_us;
  wait_us_ += wait;
  busy_us_ += service_us;
  free_at_ = completion;
  ++jobs_;
  while (!pending_.empty() && pending_.front() <= arrival) {
    pending_.pop_front();
  }
  pending_.push_back(completion);
  max_depth_ = std::max(max_depth_, static_cast<std::uint64_t>(
                                        pending_.size()));
  if (on_done) {
    engine_->schedule_at(completion,
                         [cb = std::move(on_done), completion] { cb(completion); });
  }
}

}  // namespace move::sim
