#pragma once

#include <cstdint>

/// Message-layer accounting shared by the transport, its circuit breakers,
/// and the admission controller. Plain integers (the simulated path is
/// single-threaded); accumulated on the Transport across a run and
/// snapshotted as a delta into RunMetrics, exactly like FaultAccounting and
/// MatchAccounting. Header-only and dependency-free so the metrics layer can
/// carry it without linking the net library.
namespace move::sim {

struct NetAccounting {
  /// Logical end-to-end sends (one per RPC, however many wire attempts).
  std::uint64_t messages = 0;
  /// Wire attempts, including the first try of every message.
  std::uint64_t attempts = 0;
  /// Messages delivered to their receiver exactly once (dedup applied).
  std::uint64_t delivered = 0;
  /// Attempts lost on the wire (link loss or an active partition).
  std::uint64_t drops = 0;
  /// Extra copies the link itself injected (duplication fault).
  std::uint64_t duplicates = 0;
  /// Deliveries suppressed by the receiver's idempotency-key dedup window.
  std::uint64_t dup_suppressed = 0;
  /// Re-sends after an attempt timed out.
  std::uint64_t retries = 0;
  /// Attempt timeouts observed by the sender.
  std::uint64_t timeouts = 0;
  /// Messages abandoned: retry budget or end-to-end deadline exhausted.
  std::uint64_t expired = 0;
  /// Circuit breakers tripped open (consecutive-timeout threshold crossed).
  std::uint64_t breaker_trips = 0;
  /// Sends failed fast because the destination's breaker was open.
  std::uint64_t breaker_fast_fails = 0;
  /// Messages shed by receiver-side admission control (queue over bound).
  std::uint64_t shed = 0;

  /// End-to-end delivery ratio: what fraction of logical sends made it.
  [[nodiscard]] double delivery_ratio() const noexcept {
    if (messages == 0) return 1.0;
    return static_cast<double>(delivered) / static_cast<double>(messages);
  }

  NetAccounting& operator+=(const NetAccounting& o) noexcept {
    messages += o.messages;
    attempts += o.attempts;
    delivered += o.delivered;
    drops += o.drops;
    duplicates += o.duplicates;
    dup_suppressed += o.dup_suppressed;
    retries += o.retries;
    timeouts += o.timeouts;
    expired += o.expired;
    breaker_trips += o.breaker_trips;
    breaker_fast_fails += o.breaker_fast_fails;
    shed += o.shed;
    return *this;
  }

  /// Element-wise delta (for before/after run snapshots).
  [[nodiscard]] NetAccounting delta_since(
      const NetAccounting& before) const noexcept {
    NetAccounting d;
    d.messages = messages - before.messages;
    d.attempts = attempts - before.attempts;
    d.delivered = delivered - before.delivered;
    d.drops = drops - before.drops;
    d.duplicates = duplicates - before.duplicates;
    d.dup_suppressed = dup_suppressed - before.dup_suppressed;
    d.retries = retries - before.retries;
    d.timeouts = timeouts - before.timeouts;
    d.expired = expired - before.expired;
    d.breaker_trips = breaker_trips - before.breaker_trips;
    d.breaker_fast_fails = breaker_fast_fails - before.breaker_fast_fails;
    d.shed = shed - before.shed;
    return d;
  }
};

}  // namespace move::sim
