#pragma once

#include <cstdint>

/// Online-adaptation accounting (the `run.adapt.*` gauges): what the
/// adaptive control loop observed, decided, and moved during a run. Plain
/// integers/doubles on the same snapshot-delta pattern as FaultAccounting /
/// NetAccounting; all zero when the adapt layer is not engaged, and the
/// gauges are only exported then non-trivial, so non-adaptive runs' outputs
/// stay byte-identical to the pre-adapt layout.
namespace move::sim {

struct AdaptAccounting {
  /// Observation windows the controller closed.
  std::uint64_t windows = 0;
  /// Windows whose drift check triggered a re-allocation.
  std::uint64_t reallocations = 0;
  /// Terms the drift detector flagged, summed over windows.
  std::uint64_t terms_drifted = 0;
  /// Home nodes whose grid migration completed / was abandoned.
  std::uint64_t homes_migrated = 0;
  std::uint64_t homes_aborted = 0;
  /// Migration batch RPCs sent / terminally lost (after resends).
  std::uint64_t migration_rpcs = 0;
  std::uint64_t migration_rpcs_dropped = 0;
  /// Batches applied at their receivers.
  std::uint64_t migration_batches = 0;
  /// Posting entries copied onto new grids / retired from displaced ones.
  std::uint64_t postings_moved = 0;
  std::uint64_t entries_retired = 0;
  /// Bytes held by the workload sketches (bounded by config, not stream).
  double sketch_bytes = 0.0;
  /// Additive error bound on a windowed q estimate, in documents.
  double sketch_error_bound = 0.0;
  /// Virtual time spent with at least the named home's migration in flight,
  /// summed over homes (start -> install/abort).
  double migration_inflight_us = 0.0;
  /// Virtual time the controller spent draining migrations after the last
  /// window (documents were no longer flowing — pure adaptation overhead).
  double stall_us = 0.0;

  AdaptAccounting& operator+=(const AdaptAccounting& o) noexcept {
    windows += o.windows;
    reallocations += o.reallocations;
    terms_drifted += o.terms_drifted;
    homes_migrated += o.homes_migrated;
    homes_aborted += o.homes_aborted;
    migration_rpcs += o.migration_rpcs;
    migration_rpcs_dropped += o.migration_rpcs_dropped;
    migration_batches += o.migration_batches;
    postings_moved += o.postings_moved;
    entries_retired += o.entries_retired;
    sketch_bytes += o.sketch_bytes;
    sketch_error_bound += o.sketch_error_bound;
    migration_inflight_us += o.migration_inflight_us;
    stall_us += o.stall_us;
    return *this;
  }

  /// Element-wise delta (for before/after run snapshots).
  [[nodiscard]] AdaptAccounting delta_since(
      const AdaptAccounting& before) const noexcept {
    AdaptAccounting d;
    d.windows = windows - before.windows;
    d.reallocations = reallocations - before.reallocations;
    d.terms_drifted = terms_drifted - before.terms_drifted;
    d.homes_migrated = homes_migrated - before.homes_migrated;
    d.homes_aborted = homes_aborted - before.homes_aborted;
    d.migration_rpcs = migration_rpcs - before.migration_rpcs;
    d.migration_rpcs_dropped =
        migration_rpcs_dropped - before.migration_rpcs_dropped;
    d.migration_batches = migration_batches - before.migration_batches;
    d.postings_moved = postings_moved - before.postings_moved;
    d.entries_retired = entries_retired - before.entries_retired;
    d.sketch_bytes = sketch_bytes - before.sketch_bytes;
    d.sketch_error_bound = sketch_error_bound - before.sketch_error_bound;
    d.migration_inflight_us =
        migration_inflight_us - before.migration_inflight_us;
    d.stall_us = stall_us - before.stall_us;
    return d;
  }
};

}  // namespace move::sim
