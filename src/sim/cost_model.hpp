#pragma once

#include <cstdint>

#include "index/inverted_index.hpp"

/// Latency cost model for the simulated cluster.
///
/// The paper's Eq. 2 models the latency of serving a document at a node as
///   y_d + y_p * (#filters matched locally)
/// where y_d is the document transfer latency and y_p the per-filter match
/// latency, and cites EC2 measurements [24] showing disk IO dominates. We
/// refine this slightly: a match costs one disk seek per posting list
/// retrieved plus a per-posting scan cost (y_p), and transfer costs a fixed
/// network round-trip plus a per-term serialization cost, which is what makes
/// 6000-term TREC-AP articles far more expensive to ship and match than
/// 65-term TREC-WT pages — the asymmetry the whole paper exploits.
namespace move::sim {

struct CostModel {
  // --- network -------------------------------------------------------------
  double transfer_base_us = 200.0;   ///< per-hop fixed cost (y_d fixed part)
  double transfer_per_term_us = 0.5; ///< serialization cost per doc term
  /// Multiplier on transfer cost when source and destination are in
  /// different racks — why §V's rack-aware placement wins on throughput.
  double cross_rack_penalty = 1.8;
  /// Fraction of a transfer that occupies the receiving node (NIC/stack
  /// service time) rather than being pure wire latency. This is what makes
  /// rack locality matter at saturation, not just for latency.
  double net_service_fraction = 0.3;

  // --- disk/CPU on the serving node ---------------------------------------
  double handle_base_us = 25.0;     ///< fixed per-document receive/dispatch
  double forward_decision_us = 5.0; ///< forwarding-table lookup at a home
  /// Publisher-side timeout burned per contact of a node the membership
  /// view believed alive but that is actually down — the latency price of
  /// failure-detector lag during failover routing. Added to the transfer
  /// delay of the eventual hop, not to any server's busy time.
  double route_timeout_us = 500.0;
  double seek_per_list_us = 40.0;  ///< posting-list retrieval (cached disk)
  double scan_per_posting_us = 0.4; ///< per posting entry scanned (y_p)
  double verify_per_candidate_us = 0.8;  ///< per candidate verified
  /// Service inflation per second of queueing backlog (memtable flushes and
  /// cache misses under pressure); drives Fig. 8(b)'s falling curve. The cap
  /// models throttling: a node degrades to a floor rate, never collapses.
  double congestion_per_queued_sec = 0.6;
  double congestion_max_inflation = 12.0;

  /// y_d for a document with `doc_terms` terms (Eq. 2's transfer latency).
  [[nodiscard]] double transfer_us(std::size_t doc_terms) const noexcept {
    return transfer_base_us +
           transfer_per_term_us * static_cast<double>(doc_terms);
  }

  /// y_d with rack locality applied (second-hop forwarding inside the
  /// cluster).
  [[nodiscard]] double transfer_us(std::size_t doc_terms,
                                   bool same_rack) const noexcept {
    return transfer_us(doc_terms) * (same_rack ? 1.0 : cross_rack_penalty);
  }

  /// Receiver-side service time consumed by accepting a transfer.
  [[nodiscard]] double receive_service_us(double transfer_cost_us)
      const noexcept {
    return net_service_fraction * transfer_cost_us;
  }

  /// Node-local service latency for one match operation.
  [[nodiscard]] double match_us(
      const index::MatchAccounting& acc) const noexcept {
    return seek_per_list_us * static_cast<double>(acc.lists_retrieved) +
           scan_per_posting_us * static_cast<double>(acc.postings_scanned) +
           verify_per_candidate_us *
               static_cast<double>(acc.candidates_verified);
  }

  /// The paper's beta = y_p * P / y_d ratio (Theorem 2), with y_p taken as
  /// the per-posting scan cost and y_d evaluated for an average document.
  [[nodiscard]] double beta(double total_filters,
                            double avg_doc_terms) const noexcept {
    return scan_per_posting_us * total_filters / transfer_us(
        static_cast<std::size_t>(avg_doc_terms));
  }
};

}  // namespace move::sim
