#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

/// Per-document delivery record shared by the DES experiment driver and the
/// rt executor — the common currency of the DES-equivalence differential
/// suite. A document's *delivered-match set* is its planned match set if and
/// only if every hop of its plan completed ("all matching filters are
/// found", §VI-A3); an incomplete document delivered nothing. Comparing two
/// executors' logs is therefore order-independent by construction: matches
/// are sorted-unique FilterId sets keyed by document index.
///
/// Header-only and dependency-free (like NetAccounting) so core, rt, and
/// the tests can all carry it without extra linkage.
namespace move::sim {

struct DeliveryLog {
  /// Per-document planned match set (sorted, unique), recorded at plan
  /// time by whichever executor runs the document.
  std::vector<std::vector<FilterId>> matches;
  /// 1 once every hop of the document's plan completed. Plain bytes:
  /// writers touch distinct elements and synchronize with readers through
  /// the executor's own quiesce/run barrier.
  std::vector<std::uint8_t> completed;

  void reset(std::size_t num_docs) {
    matches.assign(num_docs, {});
    completed.assign(num_docs, 0);
  }

  [[nodiscard]] std::size_t size() const noexcept { return matches.size(); }

  [[nodiscard]] std::uint64_t completed_count() const noexcept {
    std::uint64_t n = 0;
    for (const std::uint8_t c : completed) n += c;
    return n;
  }

  /// The delivered-match set of document `doc` (empty when incomplete).
  [[nodiscard]] std::span<const FilterId> delivered(std::size_t doc) const {
    if (doc >= matches.size() || completed[doc] == 0) return {};
    return matches[doc];
  }

  /// Order-independent equality of delivered sets, document by document.
  [[nodiscard]] bool equivalent(const DeliveryLog& other) const {
    if (matches.size() != other.matches.size()) return false;
    for (std::size_t d = 0; d < matches.size(); ++d) {
      const auto a = delivered(d);
      const auto b = other.delivered(d);
      if (a.size() != b.size()) return false;
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) return false;
      }
    }
    return true;
  }
};

}  // namespace move::sim
