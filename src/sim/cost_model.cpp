#include "sim/cost_model.hpp"

// CostModel is fully inline; this TU anchors the library target.
