#pragma once

#include <string>
#include <string_view>

/// Porter stemming algorithm (M. F. Porter, "An algorithm for suffix
/// stripping", Program 14(3), 1980).
///
/// The paper preprocesses the TREC corpora with the Porter algorithm
/// (§VI-A). This is a from-scratch implementation of the five-step rule
/// cascade described in the original publication.
namespace move::text {

/// Returns the stem of `word`. The input must be lower-case ASCII letters;
/// words shorter than 3 characters are returned unchanged (per the original
/// algorithm's convention).
[[nodiscard]] std::string porter_stem(std::string_view word);

}  // namespace move::text
