#include "text/tokenizer.hpp"

#include <algorithm>
#include <cctype>

namespace move::text {

namespace {

bool is_word_char(unsigned char c) noexcept {
  return std::isalnum(c) != 0 || c == '\'';
}

bool all_digits(std::string_view token) noexcept {
  return std::all_of(token.begin(), token.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

}  // namespace

void tokenize_into(std::string_view input, const TokenizerOptions& options,
                   const std::function<void(std::string_view)>& sink) {
  std::string token;
  token.reserve(options.max_length);

  auto flush = [&] {
    // Trim apostrophes kept by is_word_char (possessives like "user's").
    while (!token.empty() && token.back() == '\'') token.pop_back();
    std::size_t start = 0;
    while (start < token.size() && token[start] == '\'') ++start;
    std::string_view view(token.data() + start, token.size() - start);
    if (view.size() >= options.min_length && view.size() <= options.max_length &&
        !(options.drop_numeric && all_digits(view))) {
      sink(view);
    }
    token.clear();
  };

  for (unsigned char c : input) {
    if (is_word_char(c)) {
      if (token.size() < options.max_length + 1) {
        token.push_back(static_cast<char>(std::tolower(c)));
      }
    } else if (!token.empty()) {
      flush();
    }
  }
  if (!token.empty()) flush();
}

std::vector<std::string> tokenize(std::string_view input,
                                  const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  tokenize_into(input, options,
                [&](std::string_view t) { tokens.emplace_back(t); });
  return tokens;
}

}  // namespace move::text
