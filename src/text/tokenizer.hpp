#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

/// Raw-text tokenization.
///
/// The paper preprocesses TREC documents with the Porter algorithm and a
/// stop-word list (§VI-A). The tokenizer is the first stage of that pipeline:
/// it lower-cases, splits on non-alphanumeric characters, and drops tokens
/// that are too short/long or purely numeric.
namespace move::text {

struct TokenizerOptions {
  std::size_t min_length = 2;   ///< tokens shorter than this are dropped
  std::size_t max_length = 40;  ///< pathological tokens are dropped
  bool drop_numeric = true;     ///< drop tokens that are all digits
};

/// Splits `input` into lower-cased word tokens.
[[nodiscard]] std::vector<std::string> tokenize(
    std::string_view input, const TokenizerOptions& options = {});

/// Streaming variant: invokes `sink` per token without building a vector.
void tokenize_into(std::string_view input, const TokenizerOptions& options,
                   const std::function<void(std::string_view)>& sink);

}  // namespace move::text
