#include "text/stopwords.hpp"

#include <array>
#include <unordered_set>

namespace move::text {

namespace {

// A standard compact English stop list (function words only), comparable to
// the default lists shipped with classic IR engines.
constexpr std::array kStopwords = {
    "a",       "about",   "above",  "after",   "again",  "against", "all",
    "am",      "an",      "and",    "any",     "are",    "as",      "at",
    "be",      "because", "been",   "before",  "being",  "below",   "between",
    "both",    "but",     "by",     "can",     "cannot", "could",   "did",
    "do",      "does",    "doing",  "down",    "during", "each",    "few",
    "for",     "from",    "further","had",     "has",    "have",    "having",
    "he",      "her",     "here",   "hers",    "herself","him",     "himself",
    "his",     "how",     "i",      "if",      "in",     "into",    "is",
    "it",      "its",     "itself", "just",    "me",     "more",    "most",
    "my",      "myself",  "no",     "nor",     "not",    "now",     "of",
    "off",     "on",      "once",   "only",    "or",     "other",   "our",
    "ours",    "ourselves","out",   "over",    "own",    "same",    "she",
    "should",  "so",      "some",   "such",    "than",   "that",    "the",
    "their",   "theirs",  "them",   "themselves","then", "there",   "these",
    "they",    "this",    "those",  "through", "to",     "too",     "under",
    "until",   "up",      "very",   "was",     "we",     "were",    "what",
    "when",    "where",   "which",  "while",   "who",    "whom",    "why",
    "with",    "would",   "you",    "your",    "yours",  "yourself",
    "yourselves",
};

const std::unordered_set<std::string_view>& stopword_set() {
  static const std::unordered_set<std::string_view> set(kStopwords.begin(),
                                                        kStopwords.end());
  return set;
}

}  // namespace

bool is_stopword(std::string_view word) noexcept {
  return stopword_set().contains(word);
}

std::size_t stopword_count() noexcept { return kStopwords.size(); }

}  // namespace move::text
