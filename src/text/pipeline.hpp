#pragma once

#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "text/tokenizer.hpp"
#include "text/vocabulary.hpp"

/// End-to-end text preprocessing: tokenize -> stop-word filter -> Porter stem
/// -> intern -> dedupe. This is the pipeline the paper applies to the TREC
/// corpora (§VI-A) and to filter keywords; examples feed raw text through it.
namespace move::text {

struct PipelineOptions {
  TokenizerOptions tokenizer;
  bool remove_stopwords = true;
  bool stem = true;
  bool dedupe = true;  ///< both documents and filters are *sets* of terms
};

class Pipeline {
 public:
  /// @param vocabulary shared term interner; must outlive the pipeline.
  explicit Pipeline(Vocabulary& vocabulary, PipelineOptions options = {})
      : vocabulary_(&vocabulary), options_(options) {}

  /// Preprocesses raw text into a sorted, deduplicated set of TermIds.
  [[nodiscard]] std::vector<TermId> process(std::string_view raw) const;

  /// Like process() but only looks terms up (no interning); terms never seen
  /// before are dropped. Used when matching ad-hoc text against an existing
  /// registration vocabulary.
  [[nodiscard]] std::vector<TermId> process_readonly(
      std::string_view raw) const;

  [[nodiscard]] const Vocabulary& vocabulary() const { return *vocabulary_; }
  [[nodiscard]] Vocabulary& vocabulary() { return *vocabulary_; }

 private:
  std::vector<TermId> run(std::string_view raw, bool allow_intern) const;

  Vocabulary* vocabulary_;
  PipelineOptions options_;
};

}  // namespace move::text
