#include "text/pipeline.hpp"

#include <algorithm>

#include "text/porter.hpp"
#include "text/stopwords.hpp"

namespace move::text {

std::vector<TermId> Pipeline::run(std::string_view raw,
                                  bool allow_intern) const {
  std::vector<TermId> ids;
  tokenize_into(raw, options_.tokenizer, [&](std::string_view token) {
    if (options_.remove_stopwords && is_stopword(token)) return;
    if (options_.stem) {
      const std::string stem = porter_stem(token);
      if (allow_intern) {
        ids.push_back(vocabulary_->intern(stem));
      } else if (auto id = vocabulary_->lookup(stem)) {
        ids.push_back(*id);
      }
    } else {
      if (allow_intern) {
        ids.push_back(vocabulary_->intern(token));
      } else if (auto id = vocabulary_->lookup(token)) {
        ids.push_back(*id);
      }
    }
  });
  if (options_.dedupe) {
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  }
  return ids;
}

std::vector<TermId> Pipeline::process(std::string_view raw) const {
  return run(raw, /*allow_intern=*/true);
}

std::vector<TermId> Pipeline::process_readonly(std::string_view raw) const {
  return run(raw, /*allow_intern=*/false);
}

}  // namespace move::text
