#include "text/vocabulary.hpp"

#include <stdexcept>

namespace move::text {

TermId Vocabulary::intern(std::string_view term) {
  if (auto it = ids_.find(term); it != ids_.end()) return it->second;
  if (terms_.size() >= 0xffffffffULL) {
    throw std::length_error("Vocabulary: term id space exhausted");
  }
  const TermId id{static_cast<std::uint32_t>(terms_.size())};
  const std::string& stored = terms_.emplace_back(term);
  ids_.emplace(std::string_view(stored), id);
  return id;
}

std::optional<TermId> Vocabulary::lookup(std::string_view term) const {
  if (auto it = ids_.find(term); it != ids_.end()) return it->second;
  return std::nullopt;
}

std::string_view Vocabulary::spelling(TermId id) const {
  if (id.value >= terms_.size()) {
    throw std::out_of_range("Vocabulary::spelling: invalid TermId");
  }
  return terms_[id.value];
}

void Vocabulary::grow_synthetic(std::size_t count, std::string_view prefix) {
  std::string name;
  for (std::size_t i = 0; i < count; ++i) {
    name.assign(prefix);
    name += std::to_string(terms_.size());
    intern(name);
  }
}

}  // namespace move::text
