#include "text/porter.hpp"

#include <array>

namespace move::text {

namespace {

/// Working buffer for one word plus the measure/condition helpers the Porter
/// rules are expressed in. The algorithm operates on a prefix [0, end) of the
/// buffer, shrinking `end` as suffixes are stripped.
class Stemmer {
 public:
  explicit Stemmer(std::string_view word) : b_(word), end_(word.size()) {}

  std::string run() {
    if (end_ > 2) {
      step1a();
      step1b();
      step1c();
      step2();
      step3();
      step4();
      step5a();
      step5b();
    }
    return b_.substr(0, end_);
  }

 private:
  // --- character classification -------------------------------------------

  /// True if b_[i] is a consonant in Porter's sense ('y' is a consonant when
  /// word-initial or preceded by a vowel-position consonant).
  bool is_consonant(std::size_t i) const {
    switch (b_[i]) {
      case 'a': case 'e': case 'i': case 'o': case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !is_consonant(i - 1);
      default:
        return true;
    }
  }

  /// Porter's measure m of the prefix [0, k): the number of VC sequences in
  /// the form C?(VC){m}V?.
  std::size_t measure(std::size_t k) const {
    std::size_t n = 0;
    std::size_t i = 0;
    while (i < k && is_consonant(i)) ++i;       // skip initial C*
    while (i < k) {
      while (i < k && !is_consonant(i)) ++i;    // V+
      if (i >= k) break;
      ++n;                                       // ...followed by C -> one VC
      while (i < k && is_consonant(i)) ++i;     // C+
    }
    return n;
  }

  /// True if the prefix [0, k) contains a vowel.
  bool has_vowel(std::size_t k) const {
    for (std::size_t i = 0; i < k; ++i) {
      if (!is_consonant(i)) return true;
    }
    return false;
  }

  /// True if the prefix ends in a double consonant (e.g. -tt, -ss).
  bool ends_double_consonant(std::size_t k) const {
    return k >= 2 && b_[k - 1] == b_[k - 2] && is_consonant(k - 1);
  }

  /// True if positions (k-3, k-2, k-1) are consonant-vowel-consonant and the
  /// final consonant is not w, x, or y (Porter's *o condition).
  bool cvc(std::size_t k) const {
    if (k < 3) return false;
    if (!is_consonant(k - 3) || is_consonant(k - 2) || !is_consonant(k - 1)) {
      return false;
    }
    const char c = b_[k - 1];
    return c != 'w' && c != 'x' && c != 'y';
  }

  // --- suffix machinery ----------------------------------------------------

  bool ends_with(std::string_view suffix) const {
    if (suffix.size() > end_) return false;
    return std::string_view(b_).substr(end_ - suffix.size(),
                                       suffix.size()) == suffix;
  }

  /// Stem length if `suffix` were removed.
  std::size_t stem_len(std::string_view suffix) const {
    return end_ - suffix.size();
  }

  /// Replaces a matched suffix with `repl`, keeping end_ consistent.
  void replace_suffix(std::string_view suffix, std::string_view repl) {
    const std::size_t k = stem_len(suffix);
    b_.replace(k, b_.size() - k, repl);
    end_ = k + repl.size();
  }

  /// Rule "(m > threshold) SUFFIX -> REPL"; returns true if the suffix
  /// matched (whether or not the condition passed), per Porter's longest-
  /// match-then-test semantics.
  bool rule_m(std::string_view suffix, std::string_view repl,
              std::size_t m_greater_than) {
    if (!ends_with(suffix)) return false;
    if (measure(stem_len(suffix)) > m_greater_than) {
      replace_suffix(suffix, repl);
    }
    return true;
  }

  // --- the five steps ------------------------------------------------------

  /// Plurals: SSES -> SS, IES -> I, SS -> SS, S -> (drop).
  void step1a() {
    if (ends_with("sses")) {
      replace_suffix("sses", "ss");
    } else if (ends_with("ies")) {
      replace_suffix("ies", "i");
    } else if (ends_with("ss")) {
      // keep
    } else if (ends_with("s")) {
      replace_suffix("s", "");
    }
  }

  /// Past participles: (m>0) EED -> EE; (*v*) ED / ING -> drop, then tidy.
  void step1b() {
    if (ends_with("eed")) {
      if (measure(stem_len("eed")) > 0) replace_suffix("eed", "ee");
      return;
    }
    bool stripped = false;
    if (ends_with("ed") && has_vowel(stem_len("ed"))) {
      replace_suffix("ed", "");
      stripped = true;
    } else if (ends_with("ing") && has_vowel(stem_len("ing"))) {
      replace_suffix("ing", "");
      stripped = true;
    }
    if (!stripped) return;
    // Post-strip tidy-up: AT -> ATE, BL -> BLE, IZ -> IZE, undouble final
    // consonant (unless l/s/z), or add 'e' after a short stem.
    if (ends_with("at")) {
      replace_suffix("at", "ate");
    } else if (ends_with("bl")) {
      replace_suffix("bl", "ble");
    } else if (ends_with("iz")) {
      replace_suffix("iz", "ize");
    } else if (ends_double_consonant(end_)) {
      const char c = b_[end_ - 1];
      if (c != 'l' && c != 's' && c != 'z') --end_;
    } else if (measure(end_) == 1 && cvc(end_)) {
      b_.replace(end_, b_.size() - end_, "e");
      end_ += 1;
    }
  }

  /// (*v*) Y -> I.
  void step1c() {
    if (ends_with("y") && has_vowel(stem_len("y"))) {
      b_[end_ - 1] = 'i';
    }
  }

  /// (m>0) double-suffix normalization, longest match on penultimate letter.
  void step2() {
    static constexpr std::array<std::array<std::string_view, 2>, 20> rules = {{
        {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
        {"anci", "ance"},   {"izer", "ize"},    {"abli", "able"},
        {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
        {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
        {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
        {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
        {"iviti", "ive"},   {"biliti", "ble"},
    }};
    for (const auto& [suffix, repl] : rules) {
      if (rule_m(suffix, repl, 0)) return;
    }
  }

  /// (m>0) -icate/-ative/-alize/-iciti/-ical/-ful/-ness.
  void step3() {
    static constexpr std::array<std::array<std::string_view, 2>, 7> rules = {{
        {"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
        {"ical", "ic"},  {"ful", ""},   {"ness", ""},
    }};
    for (const auto& [suffix, repl] : rules) {
      if (rule_m(suffix, repl, 0)) return;
    }
  }

  /// (m>1) strip residual suffixes; -ion requires preceding s or t.
  void step4() {
    static constexpr std::array<std::string_view, 18> suffixes = {
        "al",   "ance", "ence", "er",  "ic",  "able", "ible", "ant",
        "ement","ment", "ent",  "ou",  "ism", "ate",  "iti",  "ous",
        "ive",  "ize",
    };
    // -ion handled specially (longest-match ordering puts it after -tion
    // forms already covered by step 2's normalization).
    for (std::string_view suffix : suffixes) {
      if (!ends_with(suffix)) continue;
      // "ement"/"ment"/"ent" overlap: ends_with picks the first match in
      // declaration order, which lists the longest first.
      if (measure(stem_len(suffix)) > 1) replace_suffix(suffix, "");
      return;
    }
    if (ends_with("ion")) {
      const std::size_t k = stem_len("ion");
      if (k > 0 && (b_[k - 1] == 's' || b_[k - 1] == 't') && measure(k) > 1) {
        replace_suffix("ion", "");
      }
    }
  }

  /// (m>1) E -> drop; (m=1 and not *o) E -> drop.
  void step5a() {
    if (!ends_with("e")) return;
    const std::size_t k = end_ - 1;
    const std::size_t m = measure(k);
    if (m > 1 || (m == 1 && !cvc(k))) end_ = k;
  }

  /// (m>1 and *d and *L) undouble final -ll.
  void step5b() {
    if (end_ >= 2 && b_[end_ - 1] == 'l' && ends_double_consonant(end_) &&
        measure(end_) > 1) {
      --end_;
    }
  }

  std::string b_;
  std::size_t end_;
};

}  // namespace

std::string porter_stem(std::string_view word) {
  if (word.size() < 3) return std::string(word);
  return Stemmer(word).run();
}

}  // namespace move::text
