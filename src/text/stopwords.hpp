#pragma once

#include <string_view>

/// English stop-word filtering.
///
/// The paper removes common stop words ("the", "and", ...) from the TREC
/// corpora before indexing (§VI-A). We ship a standard small English list;
/// callers needing a custom list can compose their own predicate.
namespace move::text {

/// True if `word` (already lower-cased) is on the built-in English stop list.
[[nodiscard]] bool is_stopword(std::string_view word) noexcept;

/// Number of entries on the built-in list (exposed for tests).
[[nodiscard]] std::size_t stopword_count() noexcept;

}  // namespace move::text
