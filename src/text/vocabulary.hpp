#pragma once

#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/types.hpp"

/// Term interning.
///
/// All downstream components (indexes, schemes, workload generators) operate
/// on dense 32-bit TermIds rather than strings; the Vocabulary owns the
/// bidirectional mapping. Interning also gives deterministic ids (insertion
/// order) for reproducible experiments.
namespace move::text {

class Vocabulary {
 public:
  Vocabulary() = default;
  // The map keys view into terms_; moving the container would be safe (deque
  // elements keep their addresses) but copying would not, so forbid both and
  // keep the type simple.
  Vocabulary(const Vocabulary&) = delete;
  Vocabulary& operator=(const Vocabulary&) = delete;

  /// Returns the id for `term`, interning it on first sight.
  TermId intern(std::string_view term);

  /// Returns the id if `term` is already interned.
  [[nodiscard]] std::optional<TermId> lookup(std::string_view term) const;

  /// Returns the string for an interned id. Precondition: id is valid.
  [[nodiscard]] std::string_view spelling(TermId id) const;

  [[nodiscard]] std::size_t size() const noexcept { return terms_.size(); }
  [[nodiscard]] bool empty() const noexcept { return terms_.empty(); }

  /// Mints `count` synthetic terms named "<prefix><index>"; the workload
  /// generators use these when no real spelling exists.
  void grow_synthetic(std::size_t count, std::string_view prefix = "t");

 private:
  // deque: element addresses are stable across push_back, so the
  // string_view keys in ids_ never dangle.
  std::deque<std::string> terms_;
  std::unordered_map<std::string_view, TermId> ids_;
};

}  // namespace move::text
