#include "rt/executor.hpp"

#include "core/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace move::rt {

namespace {

using std::chrono::steady_clock;

double us_since(steady_clock::time_point start,
                steady_clock::time_point end) noexcept {
  return std::chrono::duration<double, std::micro>(end - start).count();
}

/// Burns ~`us` microseconds of CPU on the calling worker — the rt stand-in
/// for the DES FifoServer charging service_us. A spin (not a sleep) so the
/// worker genuinely occupies its core the way a matching node would.
void burn_service(double us) {
  if (us <= 0.0) return;
  const auto deadline =
      steady_clock::now() + std::chrono::duration<double, std::micro>(us);
  while (steady_clock::now() < deadline) {
    // spin
  }
}

/// Shared run state; workers touch it only through atomics or
/// distinct-per-document slots.
struct RtRunState {
  std::vector<std::atomic<std::uint32_t>> outstanding;
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::int64_t> last_completion_ns{0};
  sim::DeliveryLog* log = nullptr;
  steady_clock::time_point start;
  double service_scale = 1.0;

  explicit RtRunState(std::size_t docs) : outstanding(docs) {}

  void stamp_completion(std::size_t doc) {
    completed.fetch_add(1, std::memory_order_relaxed);
    if (log != nullptr) log->completed[doc] = 1;
    const std::int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                    steady_clock::now() - start)
                                    .count();
    std::int64_t prev = last_completion_ns.load(std::memory_order_relaxed);
    while (prev < now_ns && !last_completion_ns.compare_exchange_weak(
                                prev, now_ns, std::memory_order_relaxed)) {
    }
  }
};

/// Ships one hop to its node's worker: the delivery continuation burns the
/// modeled service, forwards the children from the worker thread, and
/// decrements the document's outstanding-hop count. A terminally failed
/// send (shed / expired / breaker) strands the hop's whole subtree, leaving
/// the document incomplete — the same semantics as a DES on_fail.
void ship_hop(Runtime& runtime, RtRunState& state, std::size_t doc,
              NodeId src, const core::Hop& hop) {
  // The hop subtree is copied into the closure: the envelope owns its RPC
  // payload like a real wire message owns its bytes.
  runtime.transport().send(
      src, hop.node, net::Priority::kNormal,
      [&runtime, &state, doc, hop] {
        burn_service(hop.service_us * state.service_scale);
        for (const core::Hop& child : hop.then) {
          ship_hop(runtime, state, doc, hop.node, child);
        }
        if (state.outstanding[doc].fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
          state.stamp_completion(doc);
        }
      });
}

}  // namespace

RtRunMetrics run_dissemination(core::Scheme& scheme,
                               const workload::TermSetTable& docs,
                               const RtRunConfig& config,
                               sim::DeliveryLog* delivery_log) {
  auto& c = scheme.cluster();
  Runtime runtime(c.size(), config.net);

  if (delivery_log != nullptr) delivery_log->reset(docs.size());
  auto state = std::make_unique<RtRunState>(docs.size());
  state->log = delivery_log;
  state->service_scale = config.service_scale;
  state->start = steady_clock::now();

  RtRunMetrics m;
  m.documents_published = docs.size();

  const double gap_us = config.inject_rate_per_sec > 0.0
                            ? 1'000'000.0 / config.inject_rate_per_sec
                            : 0.0;

  for (std::size_t i = 0; i < docs.size(); ++i) {
    if (gap_us > 0.0) {
      std::this_thread::sleep_until(
          state->start +
          std::chrono::duration<double, std::micro>(gap_us *
                                                    static_cast<double>(i)));
    }
    // Planning (and therefore matching) happens here on the publisher,
    // serially — the same place the DES does it. plan_publish is the one
    // scheme entry point the run uses, so cluster state is read
    // single-threadedly while workers only execute cost/forwarding work.
    auto plan = scheme.plan_publish(docs.row(i));
    m.notifications += plan.matches.size();
    if (delivery_log != nullptr) {
      delivery_log->matches[i] = plan.matches;
    }
    const std::uint32_t hops = core::count_plan_hops(plan.hops);
    if (hops == 0) {
      state->stamp_completion(i);
      continue;
    }
    state->outstanding[i].store(hops, std::memory_order_relaxed);
    for (const core::Hop& hop : plan.hops) {
      ship_hop(runtime, *state, i, net::kClientNode, hop);
    }
  }
  const auto publish_end = steady_clock::now();
  runtime.quiesce();
  runtime.stop();

  m.documents_completed = state->completed.load(std::memory_order_acquire);
  m.publish_wall_us = us_since(state->start, publish_end);
  const double last_ns =
      static_cast<double>(state->last_completion_ns.load());
  m.wall_makespan_us = std::max(last_ns / 1'000.0, m.publish_wall_us);
  m.envelopes_processed = runtime.envelopes_processed();
  m.net_acc = runtime.transport().accounting();
  return m;
}

}  // namespace move::rt
