#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "net/link_model.hpp"
#include "net/retry_policy.hpp"
#include "net/transport.hpp"
#include "rt/mpsc_queue.hpp"
#include "sim/net_accounting.hpp"

/// Real-clock multi-threaded executor: hosts the cluster nodes on actual
/// std::threads, one mailbox-driven worker per node, with the reliability
/// semantics of `net::Transport` (bounded retries, receiver idempotency-key
/// dedup, per-destination circuit breakers, priority shedding) carried over
/// behind a Transport-shaped interface — see docs/ARCHITECTURE.md § rt.
///
/// The wire is still a *shim*: `net::LinkModel`'s loss and duplication
/// faults are drawn deterministically per (key, attempt) at the sender, so
/// a lost attempt is observed as a timeout exactly as in the DES, while
/// latency/jitter/reordering need no model at all — real queueing and real
/// scheduling provide them. Two deliberate divergences from the DES
/// transport, both load-tolerance choices: the retry budget is the attempt
/// count (never the wall-clock deadline, which a loaded CI host would blow
/// through spuriously), and breaker cooldowns run on the steady clock.
namespace move::rt {

/// One RPC envelope as it crosses a mailbox — the rt analogue of the
/// Transport's in-flight message: idempotency key, route, priority, and the
/// delivery continuation the owner worker runs.
struct Envelope {
  std::uint64_t key = 0;  ///< idempotency key (receiver dedups on this)
  NodeId src{net::kClientNode};
  NodeId dst{0};
  net::Priority priority = net::Priority::kNormal;
  bool link_duplicate = false;  ///< extra copy injected by the link shim
  std::function<void()> on_deliver;
};

struct RtOptions {
  /// Link fault shim. `loss` and `duplicate` are honored (drawn per
  /// attempt from a deterministic hash of seed/key/attempt); the latency/
  /// jitter/reorder fields are ignored — the real clock supplies those.
  net::LinkModel link;
  net::RetryPolicy retry;
  net::BreakerOptions breaker;
  /// Per-node mailbox capacity (rounded up to a power of two). A full
  /// mailbox is backpressure: senders spin-retry the push (it is not a
  /// drop and not a timeout).
  std::size_t mailbox_capacity = 4096;
  /// Receiver queue depth at which kBulk sends are shed (kNormal sheds at
  /// 4x, kHigh never) — same contract as NetOptions. 0 disables shedding.
  std::size_t shed_queue_bound = 0;
  /// Receiver dedup window, in remembered keys per node (count-bounded
  /// rather than time-bounded: real time is load-dependent).
  std::size_t dedup_window_keys = 1 << 16;
  /// Seed for the deterministic link-fault draws.
  std::uint64_t seed = 0x4e70002ULL;
  /// Fraction of the DES backoff actually slept before a retry; 0 retries
  /// after a yield only (tests), 1 sleeps the policy's full jittered wait.
  double backoff_scale = 0.0;
};

class Runtime;

/// Sender half of the runtime: Transport-shaped `send` over the mailboxes.
/// Thread-safe — publishers and forwarding workers all send through it.
class RtTransport {
 public:
  /// Sends one logical RPC to `dst`'s worker. Returns true when the message
  /// is enqueued for exactly-once delivery; false when it terminally failed
  /// (shed, breaker-rejected, or retry budget exhausted) — the rt analogue
  /// of the DES transport's on_fail.
  bool send(NodeId src, NodeId dst, net::Priority priority,
            std::function<void()> on_deliver);

  [[nodiscard]] bool breaker_open(NodeId dst) const;

  /// Consistent snapshot of the atomic counters in the DES accounting
  /// shape, so rt and DES runs report through the same struct.
  [[nodiscard]] sim::NetAccounting accounting() const;

  [[nodiscard]] const RtOptions& options() const noexcept { return options_; }

 private:
  friend class Runtime;
  RtTransport(Runtime& runtime, RtOptions options);

  struct Breaker {
    mutable std::mutex mutex;
    std::size_t consecutive_timeouts = 0;
    bool tripped = false;
    std::chrono::steady_clock::time_point open_until{};
    double cooldown_us = 0.0;
  };

  [[nodiscard]] bool link_drops(std::uint64_t key,
                                std::size_t attempt) const noexcept;
  [[nodiscard]] bool link_duplicates(std::uint64_t key) const noexcept;
  void record_timeout(NodeId dst);
  void record_success(NodeId dst);
  [[nodiscard]] Breaker& breaker_for(NodeId dst) const;
  void backoff(std::size_t retry_index);

  Runtime* runtime_;
  RtOptions options_;
  std::atomic<std::uint64_t> next_key_{1};
  // One breaker per node plus one for the external client id.
  mutable std::vector<std::unique_ptr<Breaker>> breakers_;

  struct Counters {
    std::atomic<std::uint64_t> messages{0}, attempts{0}, delivered{0},
        drops{0}, duplicates{0}, dup_suppressed{0}, retries{0}, timeouts{0},
        expired{0}, breaker_trips{0}, breaker_fast_fails{0}, shed{0};
  };
  mutable Counters acc_;
};

/// The executor itself: one worker thread per cluster node, each draining
/// its own MPSC mailbox. Envelope processing is node-serial (the rt
/// analogue of the DES FifoServer): dedup by idempotency key, then run the
/// delivery continuation on the owner thread.
class Runtime {
 public:
  /// Spawns `num_nodes` workers. Node ids are the dense cluster ids; the
  /// external client (net::kClientNode) produces but owns no mailbox.
  Runtime(std::size_t num_nodes, RtOptions options);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] RtTransport& transport() noexcept { return *transport_; }
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Blocks until no envelope is in flight anywhere (all mailboxes drained
  /// and every delivery continuation returned). Callers must have finished
  /// submitting first — sends racing quiesce() make "idle" a moving target.
  void quiesce();

  /// Signals shutdown and joins every worker. Workers drain their mailboxes
  /// before exiting (destruction-drains like ThreadPool), so no accepted
  /// envelope is lost. Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] std::uint64_t envelopes_processed() const noexcept {
    return processed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t queue_depth(NodeId node) const {
    return workers_[node.value]->mailbox.size_approx();
  }

 private:
  friend class RtTransport;

  struct Worker {
    explicit Worker(std::size_t capacity) : mailbox(capacity) {}
    MpscQueue<Envelope> mailbox;
    std::thread thread;
    // Single-consumer state: only the owner worker touches these.
    std::unordered_set<std::uint64_t> seen_keys;
    std::deque<std::uint64_t> seen_order;
  };

  void worker_loop(Worker& worker);
  /// Blocking enqueue with spin-retry backpressure (mailbox full is never
  /// a drop). Increments the inflight count on success.
  void push(NodeId dst, Envelope&& envelope);

  RtOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<RtTransport> transport_;
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<bool> stopping_{false};
  bool joined_ = false;
};

}  // namespace move::rt
