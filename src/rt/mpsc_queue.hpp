#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

/// Real-clock runtime primitives.
///
/// Unlike everything under src/sim, this subsystem runs on actual hardware
/// threads and the wall clock. The simulated cluster's mailbox (the
/// EventEngine queue) becomes a real bounded lock-free MPSC ring per node.
namespace move::rt {

/// Bounded lock-free multi-producer queue (Vyukov bounded-MPMC algorithm,
/// used here with a single consumer per mailbox). Capacity is rounded up to
/// a power of two; `try_push` fails (returns false) when the ring is full —
/// backpressure is the caller's policy (the transport retries or sheds),
/// never a hidden block inside the queue.
///
/// T must be default-constructible and movable. Each slot carries a
/// sequence counter: producers claim a slot by CAS on the tail, publish the
/// value with a release store of seq, and the consumer acquires it — the
/// only synchronization points, so pushes from many worker threads never
/// contend on a lock.
template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(std::size_t capacity_hint) {
    std::size_t cap = 2;
    while (cap < capacity_hint) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Enqueues `v`; false when the ring is full (value left intact for the
  /// caller to retry or shed). Safe from any number of threads.
  [[nodiscard]] bool try_push(T& v) {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full: the slot one lap back is still occupied
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(v);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Dequeues into `out`; false when empty. Single consumer by contract
  /// (the algorithm tolerates more, but each mailbox has one owner worker).
  [[nodiscard]] bool try_pop(T& out) {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->value = T{};  // drop payload resources before the slot is reused
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Racy size estimate — used only for admission-control shedding
  /// decisions, where an off-by-a-few answer just moves the shed threshold
  /// by a message.
  [[nodiscard]] std::size_t size_approx() const noexcept {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::size_t mask_ = 0;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) std::atomic<std::size_t> tail_{0};  // producers
  alignas(64) std::atomic<std::size_t> head_{0};  // the owner worker
};

}  // namespace move::rt
