#pragma once

#include <cstdint>

#include "core/scheme.hpp"
#include "rt/runtime.hpp"
#include "sim/delivery_log.hpp"
#include "sim/net_accounting.hpp"
#include "workload/term_set_table.hpp"

/// Real-clock dissemination driver — the rt twin of core::run_dissemination.
///
/// The publisher (caller thread) plays the DES's injection loop: it plans
/// each document through the scheme (matching happens at plan time, exactly
/// as in the DES) and hands every first-level hop to the destination node's
/// worker through the RtTransport. Workers burn the hop's modeled service
/// time on the real clock (scaled by `service_scale`), forward the plan's
/// child hops from their own thread — multi-producer mailboxes earning
/// their keep — and complete the document when its last hop finishes.
/// Throughput is completed documents per *wall-clock* second, measured, not
/// predicted.
namespace move::rt {

struct RtRunConfig {
  RtOptions net;
  /// Publisher pacing in documents per second; 0 injects as fast as the
  /// publisher can plan (the fig8 burst regime).
  double inject_rate_per_sec = 0.0;
  /// Fraction of each hop's modeled service_us actually burned (CPU spin)
  /// on the owner worker. 1.0 replays the DES cost model in real time (the
  /// fig12 measured-vs-predicted comparison); 0 measures pure
  /// plan+mailbox+threading overhead (the differential tests).
  double service_scale = 1.0;
};

struct RtRunMetrics {
  std::uint64_t documents_published = 0;
  std::uint64_t documents_completed = 0;  ///< all hops delivered and served
  std::uint64_t notifications = 0;        ///< matched (doc, filter) pairs
  double wall_makespan_us = 0.0;  ///< first inject -> last hop completion
  double publish_wall_us = 0.0;   ///< publisher-side planning time alone
  std::uint64_t envelopes_processed = 0;
  sim::NetAccounting net_acc;

  [[nodiscard]] double throughput_per_sec() const noexcept {
    if (wall_makespan_us <= 0.0) return 0.0;
    return static_cast<double>(documents_completed) /
           (wall_makespan_us / 1'000'000.0);
  }
};

/// Disseminates `docs` through `scheme` on the real clock. Does not touch
/// the cluster's virtual-time servers or engine; node liveness and filter
/// placement are read exactly as the DES reads them, so a DES run and an rt
/// run over identically-constructed clusters execute identical plans.
/// When `delivery_log` is given it is reset to docs.size() and filled with
/// the per-document delivered-match sets (the differential-test currency).
[[nodiscard]] RtRunMetrics run_dissemination(
    core::Scheme& scheme, const workload::TermSetTable& docs,
    const RtRunConfig& config = {}, sim::DeliveryLog* delivery_log = nullptr);

}  // namespace move::rt
