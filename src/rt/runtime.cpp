#include "rt/runtime.hpp"

#include <algorithm>
#include <chrono>

#include "common/hash.hpp"
#include "common/rng.hpp"

namespace move::rt {

namespace {

using std::chrono::steady_clock;

/// Dense breaker index: cluster nodes map to their id, the external client
/// to the extra trailing slot.
std::size_t breaker_index(NodeId id, std::size_t num_nodes) noexcept {
  return id == net::kClientNode ? num_nodes
                                : std::min<std::size_t>(id.value, num_nodes);
}

/// Uniform [0,1) from a hash — the per-(key,attempt) link-fault draw. Using
/// a pure function of (seed, key, attempt) instead of a shared RNG stream
/// keeps the draw thread-safe, contention-free, and independent of thread
/// interleaving, so a lossy rt run replays its drop pattern exactly.
double hashed_unit(std::uint64_t seed, std::uint64_t key,
                   std::uint64_t salt) noexcept {
  const std::uint64_t h =
      common::mix64(common::hash_combine(common::hash_combine(seed, key), salt));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

// --- RtTransport -----------------------------------------------------------

RtTransport::RtTransport(Runtime& runtime, RtOptions options)
    : runtime_(&runtime), options_(std::move(options)) {
  breakers_.resize(runtime.size() + 1);
  for (auto& b : breakers_) b = std::make_unique<Breaker>();
}

bool RtTransport::link_drops(std::uint64_t key,
                             std::size_t attempt) const noexcept {
  if (options_.link.loss <= 0.0) return false;
  return hashed_unit(options_.seed, key, 0x10550000ULL + attempt) <
         options_.link.loss;
}

bool RtTransport::link_duplicates(std::uint64_t key) const noexcept {
  if (options_.link.duplicate <= 0.0) return false;
  return hashed_unit(options_.seed, key, 0xd0b1eULL) < options_.link.duplicate;
}

RtTransport::Breaker& RtTransport::breaker_for(NodeId dst) const {
  return *breakers_[breaker_index(dst, runtime_->size())];
}

bool RtTransport::breaker_open(NodeId dst) const {
  Breaker& b = breaker_for(dst);
  std::lock_guard lock(b.mutex);
  if (!b.tripped) return false;
  if (steady_clock::now() < b.open_until) return true;
  // Half-open: let the next send probe; a success closes it fully, a
  // timeout re-trips with a doubled cooldown (record_timeout).
  return false;
}

void RtTransport::record_timeout(NodeId dst) {
  acc_.timeouts.fetch_add(1, std::memory_order_relaxed);
  Breaker& b = breaker_for(dst);
  std::lock_guard lock(b.mutex);
  ++b.consecutive_timeouts;
  if (b.consecutive_timeouts < options_.breaker.trip_after && !b.tripped) {
    return;
  }
  const double cooldown =
      b.cooldown_us <= 0.0
          ? options_.breaker.cooldown_us
          : std::min(b.cooldown_us * 2.0, options_.breaker.max_cooldown_us);
  if (!b.tripped || steady_clock::now() >= b.open_until) {
    b.tripped = true;
    b.cooldown_us = cooldown;
    b.open_until = steady_clock::now() +
                   std::chrono::microseconds(static_cast<long>(cooldown));
    acc_.breaker_trips.fetch_add(1, std::memory_order_relaxed);
  }
}

void RtTransport::record_success(NodeId dst) {
  Breaker& b = breaker_for(dst);
  std::lock_guard lock(b.mutex);
  b.consecutive_timeouts = 0;
  b.tripped = false;
  b.cooldown_us = 0.0;
}

void RtTransport::backoff(std::size_t retry_index) {
  if (options_.backoff_scale <= 0.0) {
    std::this_thread::yield();
    return;
  }
  // The DES policy's jittered wait, scaled; jitter comes from the same
  // deterministic hash family as the link draws.
  common::SplitMix64 rng(common::hash_combine(options_.seed, retry_index));
  const double wait_us =
      options_.retry.backoff_us(retry_index, rng) * options_.backoff_scale;
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<long>(wait_us)));
}

bool RtTransport::send(NodeId src, NodeId dst, net::Priority priority,
                       std::function<void()> on_deliver) {
  acc_.messages.fetch_add(1, std::memory_order_relaxed);
  if (breaker_open(dst)) {
    acc_.breaker_fast_fails.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::uint64_t key = next_key_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t max_attempts =
      options_.retry.enabled ? std::max<std::size_t>(1, options_.retry.max_attempts)
                             : 1;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      acc_.retries.fetch_add(1, std::memory_order_relaxed);
      backoff(attempt - 1);
      if (breaker_open(dst)) {
        acc_.breaker_fast_fails.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    acc_.attempts.fetch_add(1, std::memory_order_relaxed);
    if (link_drops(key, attempt)) {
      acc_.drops.fetch_add(1, std::memory_order_relaxed);
      record_timeout(dst);  // the sender would have waited out the ack
      continue;
    }
    if (options_.shed_queue_bound > 0 &&
        priority != net::Priority::kHigh) {
      const std::size_t bound = priority == net::Priority::kBulk
                                    ? options_.shed_queue_bound
                                    : options_.shed_queue_bound * 4;
      if (runtime_->queue_depth(dst) >= bound) {
        acc_.shed.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    Envelope envelope{key, src, dst, priority, false, std::move(on_deliver)};
    const bool duplicate = link_duplicates(key);
    Envelope copy;  // built before the move below consumes `envelope`
    if (duplicate) {
      copy = Envelope{key, src, dst, priority, true, envelope.on_deliver};
    }
    runtime_->push(dst, std::move(envelope));
    if (duplicate) {
      acc_.duplicates.fetch_add(1, std::memory_order_relaxed);
      runtime_->push(dst, std::move(copy));
    }
    record_success(dst);
    return true;
  }
  acc_.expired.fetch_add(1, std::memory_order_relaxed);
  return false;
}

sim::NetAccounting RtTransport::accounting() const {
  sim::NetAccounting out;
  out.messages = acc_.messages.load(std::memory_order_acquire);
  out.attempts = acc_.attempts.load(std::memory_order_acquire);
  out.delivered = acc_.delivered.load(std::memory_order_acquire);
  out.drops = acc_.drops.load(std::memory_order_acquire);
  out.duplicates = acc_.duplicates.load(std::memory_order_acquire);
  out.dup_suppressed = acc_.dup_suppressed.load(std::memory_order_acquire);
  out.retries = acc_.retries.load(std::memory_order_acquire);
  out.timeouts = acc_.timeouts.load(std::memory_order_acquire);
  out.expired = acc_.expired.load(std::memory_order_acquire);
  out.breaker_trips = acc_.breaker_trips.load(std::memory_order_acquire);
  out.breaker_fast_fails =
      acc_.breaker_fast_fails.load(std::memory_order_acquire);
  out.shed = acc_.shed.load(std::memory_order_acquire);
  return out;
}

// --- Runtime ---------------------------------------------------------------

Runtime::Runtime(std::size_t num_nodes, RtOptions options)
    : options_(std::move(options)) {
  workers_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    workers_.push_back(std::make_unique<Worker>(options_.mailbox_capacity));
  }
  transport_.reset(new RtTransport(*this, options_));
  for (auto& w : workers_) {
    Worker* worker = w.get();
    worker->thread = std::thread([this, worker] { worker_loop(*worker); });
  }
}

Runtime::~Runtime() { stop(); }

void Runtime::push(NodeId dst, Envelope&& envelope) {
  Worker& worker = *workers_[dst.value];
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  // Full mailbox = backpressure, not loss: spin until the owner drains a
  // slot. The owner is always draining (workers only block when idle), so
  // this terminates; yields keep an oversubscribed host live.
  while (!worker.mailbox.try_push(envelope)) {
    std::this_thread::yield();
  }
}

void Runtime::worker_loop(Worker& worker) {
  Envelope envelope;
  std::size_t idle_polls = 0;
  for (;;) {
    if (worker.mailbox.try_pop(envelope)) {
      idle_polls = 0;
      // Receiver-side idempotency-key dedup, count-bounded window. Single
      // consumer: no lock needed on the worker's own window.
      const bool fresh = worker.seen_keys.insert(envelope.key).second;
      if (fresh) {
        worker.seen_order.push_back(envelope.key);
        if (worker.seen_order.size() > options_.dedup_window_keys) {
          worker.seen_keys.erase(worker.seen_order.front());
          worker.seen_order.pop_front();
        }
        if (envelope.on_deliver) envelope.on_deliver();
        transport_->acc_.delivered.fetch_add(1, std::memory_order_relaxed);
      } else {
        transport_->acc_.dup_suppressed.fetch_add(1,
                                                  std::memory_order_relaxed);
      }
      envelope = Envelope{};  // release the closure before idling
      processed_.fetch_add(1, std::memory_order_acq_rel);
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    if (stopping_.load(std::memory_order_acquire) &&
        inflight_.load(std::memory_order_acquire) == 0) {
      return;  // drained everywhere: no envelope can still reach us
    }
    ++idle_polls;
    if (idle_polls < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

void Runtime::quiesce() {
  std::size_t idle_polls = 0;
  while (inflight_.load(std::memory_order_acquire) != 0) {
    if (++idle_polls < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

void Runtime::stop() {
  if (joined_) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  joined_ = true;
}

}  // namespace move::rt
