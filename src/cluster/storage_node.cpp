#include "cluster/storage_node.hpp"

#include <algorithm>

namespace move::cluster {

std::size_t StorageNode::register_copy(FilterId global,
                                       std::span<const TermId> terms,
                                       std::span<const TermId> index_terms) {
  FilterId local;
  if (auto it = global_to_local_.find(global); it != global_to_local_.end()) {
    local = it->second;
  } else {
    local = store_.add(terms);
    global_to_local_.emplace(global, local);
    local_to_global_.push_back(global);
    posting_refs_.push_back(0);
  }
  // Index under each requested term, skipping lists that already reference
  // this copy (re-registration of the same filter under the same term).
  // posting_contains probes without thawing a frozen index: binary search
  // on materialized lists, a single-block skip-directory seek on
  // frozen-compressed ones.
  std::size_t added = 0;
  for (TermId term : index_terms) {
    if (!index_.posting_contains(term, local)) {
      const TermId one[] = {term};
      index_.add(local, one);
      meta_.record_filter(term);
      ++posting_refs_[local.value];
      ++added;
    }
  }
  return added;
}

std::size_t StorageNode::unregister_copy(FilterId global,
                                         std::span<const TermId> index_terms) {
  auto it = global_to_local_.find(global);
  if (it == global_to_local_.end()) return 0;
  const FilterId local = it->second;
  std::size_t removed = 0;
  for (TermId term : index_terms) {
    if (index_.posting_contains(term, local)) {
      const TermId one[] = {term};
      index_.remove(local, one);
      meta_.remove_filter(term);
      ++removed;
    }
  }
  if (removed == 0) return 0;
  auto& refs = posting_refs_[local.value];
  refs -= removed < refs ? static_cast<std::uint32_t>(removed) : refs;
  if (refs == 0) {
    // Last posting gone: retire the copy. The arena row stays (flat
    // storage cannot shrink) but is unreachable and stops being counted.
    retired_term_slots_ += store_.terms(local).size();
    global_to_local_.erase(it);
  }
  return removed;
}

void StorageNode::translate(std::vector<FilterId>& ids) const {
  for (FilterId& id : ids) id = local_to_global_[id.value];
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

index::MatchAccounting StorageNode::match_full(
    std::span<const TermId> doc_terms, const index::MatchOptions& options,
    std::vector<FilterId>& out_global) const {
  const index::SiftMatcher matcher(store_, index_);
  const auto acc = matcher.match(doc_terms, options, out_global, scratch_);
  translate(out_global);
  totals_ += acc;
  ++match_calls_;
  return acc;
}

index::MatchAccounting StorageNode::match_single(
    TermId context_term, std::span<const TermId> doc_terms,
    const index::MatchOptions& options,
    std::vector<FilterId>& out_global) const {
  const index::SiftMatcher matcher(store_, index_);
  const auto acc = matcher.match_single_list(context_term, doc_terms, options,
                                             out_global, scratch_);
  translate(out_global);
  totals_ += acc;
  ++match_calls_;
  return acc;
}

void StorageNode::clear() {
  store_ = index::FilterStore();
  index_ = index::InvertedIndex();
  meta_ = MetaStore();
  global_to_local_.clear();
  local_to_global_.clear();
  posting_refs_.clear();
  retired_term_slots_ = 0;
  reset_accounting();
}

std::vector<FilterId> StorageNode::stored_filters() const {
  std::vector<FilterId> out;
  out.reserve(global_to_local_.size());
  for (const auto& [global, local] : global_to_local_) out.push_back(global);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace move::cluster
