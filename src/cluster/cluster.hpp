#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "cluster/storage_node.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "kv/gossip.hpp"
#include "kv/ring.hpp"
#include "kv/topology.hpp"
#include "sim/cost_model.hpp"
#include "sim/event_engine.hpp"
#include "sim/fault_accounting.hpp"

/// The simulated commodity-machine cluster the schemes run on: N storage
/// nodes joined to one consistent-hash ring, racked by a RackTopology, each
/// fronted by a serial FifoServer on a shared virtual clock. Stands in for
/// the paper's ~100-node Ukko/Cassandra deployment.
namespace move::obs {
class Registry;
}

namespace move::cluster {

struct ClusterConfig {
  std::size_t num_nodes = 20;  ///< paper default for the cluster experiments
  std::size_t num_racks = 4;
  std::uint32_t vnodes_per_node = 64;
  sim::CostModel cost;
  std::uint64_t seed = 0x5eedc1u;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  // Non-copyable: servers hold a pointer to the engine.
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const ClusterConfig& config() const noexcept {
    return config_;
  }

  [[nodiscard]] StorageNode& node(NodeId id) { return nodes_[id.value]; }
  [[nodiscard]] const StorageNode& node(NodeId id) const {
    return nodes_[id.value];
  }
  [[nodiscard]] sim::FifoServer& server(NodeId id) {
    return servers_[id.value];
  }

  [[nodiscard]] kv::HashRing& ring() noexcept { return ring_; }
  [[nodiscard]] const kv::HashRing& ring() const noexcept { return ring_; }
  [[nodiscard]] const kv::RackTopology& topology() const noexcept {
    return topology_;
  }
  [[nodiscard]] sim::EventEngine& engine() noexcept { return engine_; }
  [[nodiscard]] const sim::CostModel& cost() const noexcept {
    return config_.cost;
  }

  // --- failure injection (Fig. 9 c-d and the fault subsystem) ---------------

  [[nodiscard]] bool alive(NodeId id) const { return alive_[id.value]; }

  /// Crashes a node: the liveness bit flips and, when a membership is
  /// attached, the node's gossip heartbeat freezes. Its stores are kept —
  /// a crashed node that recovers still has its data (fail != decommission).
  void fail_node(NodeId id);

  /// Recovers a previously failed node (data intact, fresh gossip epoch).
  /// Decommissioned nodes (remove_node) cannot be revived — they left the
  /// ring. Throws std::out_of_range / std::logic_error accordingly.
  void revive_node(NodeId id);
  void revive_all();

  /// Fails exactly ceil(fraction * live_count()) distinct currently-live
  /// nodes, chosen uniformly without replacement — so failure benchmarks
  /// hit their nominal kill rate even when some nodes are already down.
  void fail_fraction(double fraction, common::SplitMix64& rng);

  /// Attaches a gossip membership the cluster keeps in sync: fail_node /
  /// revive_node crash/restart the node there, and add_node registers it.
  /// Pass nullptr to detach. The membership must outlive the cluster (or be
  /// detached first); existing nodes are registered on attach.
  void attach_membership(kv::GossipMembership* membership);
  [[nodiscard]] kv::GossipMembership* membership() const noexcept {
    return membership_;
  }

  /// Liveness as routing sees it: with a membership attached, the belief of
  /// the lowest-id truly-live node (the coordinator a publisher proxies
  /// through) — which can lag reality in both directions; without one,
  /// ground truth. Used by the schemes' failover paths. A routing veto (the
  /// transport's circuit breakers) overrides either source: a vetoed node
  /// is treated as dead so publishes fail over away from it.
  [[nodiscard]] bool routing_believes_alive(NodeId subject) const;

  /// Extra routing-level health input consulted by routing_believes_alive:
  /// return true to veto (treat as dead). Used to feed the net layer's
  /// per-destination circuit breakers back into failover routing. Pass an
  /// empty function to detach. The callable must outlive the cluster or be
  /// detached first.
  using RoutingVetoFn = std::function<bool(NodeId)>;
  void set_routing_veto(RoutingVetoFn veto) { routing_veto_ = std::move(veto); }

  /// Failure-path counters shared by routing failover, hinted handoff, and
  /// the repair pipeline. Mutable-by-design (the schemes update it from
  /// logically-const planning paths); snapshot deltas land in RunMetrics.
  [[nodiscard]] sim::FaultAccounting& fault_acc() const noexcept {
    return fault_acc_;
  }

  [[nodiscard]] std::size_t live_count() const;
  [[nodiscard]] std::vector<NodeId> live_nodes() const;

  /// Resets all per-run simulation state (servers, engine stays monotonic).
  void reset_servers();

  // --- membership changes ---------------------------------------------------

  /// Joins a fresh node (next dense id): added to the ring, racked
  /// round-robin, alive, empty stores. Schemes must rebuild() afterwards so
  /// filters move to their new homes.
  NodeId add_node();

  /// Decommissions a node: leaves the ring, drops its stored filters, and
  /// is marked not-alive (ids are never reused). Schemes must rebuild().
  void remove_node(NodeId id);

  /// Clears every node's stores (registration is about to be replayed).
  void wipe_storage();

  /// Freezes every node's inverted list into its flat posting arena (see
  /// StorageNode::seal). Schemes call this when bulk registration finishes;
  /// later registrations transparently thaw the affected node.
  void seal_storage();

  /// Snapshots cluster-wide and per-node state into `registry` as gauges
  /// (snapshot semantics): storage, match accounting, FifoServer service
  /// totals, queue depth, busy fraction, liveness — plus the engine's own
  /// counters. Names follow DESIGN.md "Metrics naming": `<prefix>.nodes`,
  /// `<prefix>.node.busy_us{node=i}`, ...
  void export_metrics(obs::Registry& registry,
                      std::string_view prefix = "cluster") const;

 private:
  ClusterConfig config_;
  kv::HashRing ring_;
  kv::RackTopology topology_;
  sim::EventEngine engine_;
  std::vector<StorageNode> nodes_;
  std::vector<sim::FifoServer> servers_;
  std::vector<bool> alive_;
  kv::GossipMembership* membership_ = nullptr;
  RoutingVetoFn routing_veto_;
  mutable sim::FaultAccounting fault_acc_;
};

}  // namespace move::cluster
