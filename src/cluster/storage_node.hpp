#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "cluster/meta_store.hpp"
#include "common/types.hpp"
#include "index/filter_store.hpp"
#include "index/inverted_index.hpp"
#include "index/match_scratch.hpp"
#include "index/sift_matcher.hpp"

/// One logical storage/matching node — the Fig. 3 internals: a filter store
/// (full term sets of locally held filter copies), a local inverted list,
/// and a meta-data store.
///
/// Filter ids are global (minted by the scheme); the node keeps a
/// global->local translation so a filter registered here twice (e.g. the
/// home node of both its terms) is stored once and merely indexed under both
/// terms, matching Cassandra's column-family upsert semantics.
namespace move::cluster {

class StorageNode {
 public:
  explicit StorageNode(NodeId id) : id_(id) {}

  [[nodiscard]] NodeId id() const noexcept { return id_; }

  /// Stores a copy of a global filter (idempotent per filter) and indexes it
  /// under each of `index_terms` (deduplicated against existing entries).
  /// Pass the filter's full term set as `index_terms` for RS-style full
  /// indexing, or the single home term for IL/MOVE-style indexing.
  /// @returns the number of *new* posting entries added — 0 when the copy
  /// was already fully registered (the repair pipeline's moved-work unit).
  std::size_t register_copy(FilterId global, std::span<const TermId> terms,
                            std::span<const TermId> index_terms);

  /// Reverses register_copy for the given index terms: removes this node's
  /// posting entries for `global` under each of `index_terms` (terms that
  /// never indexed the copy are skipped). When the last posting entry
  /// referencing the copy is gone the copy itself is retired: stores()
  /// turns false, its term slots stop counting, and stored_count() drops.
  /// The FilterStore row is not reclaimed (flat arenas cannot shrink) but
  /// is unreachable — no posting list references it — so matching is
  /// unaffected. The live-migration retire path's moved-work unit.
  /// @returns the number of posting entries actually removed.
  std::size_t unregister_copy(FilterId global,
                              std::span<const TermId> index_terms);

  /// True if this node holds a copy of the global filter.
  [[nodiscard]] bool stores(FilterId global) const {
    return global_to_local_.find(global) != global_to_local_.end();
  }

  /// Packs the local inverted list into its flat posting arena (see
  /// InvertedIndex::finalize). Schemes call this once bulk registration is
  /// done; later register_copy calls transparently thaw, so sealing is an
  /// optimization, never a correctness requirement.
  void seal() { index_.finalize(); }

  /// Full SIFT match over every locally indexed document term; results are
  /// global filter ids, ascending.
  index::MatchAccounting match_full(std::span<const TermId> doc_terms,
                                    const index::MatchOptions& options,
                                    std::vector<FilterId>& out_global) const;

  /// Single-posting-list match for the home/context term (§III-B fast path).
  index::MatchAccounting match_single(TermId context_term,
                                      std::span<const TermId> doc_terms,
                                      const index::MatchOptions& options,
                                      std::vector<FilterId>& out_global) const;

  /// Global ids of every filter with a copy on this node.
  [[nodiscard]] std::vector<FilterId> stored_filters() const;

  /// Number of filter copies stored (the paper's storage-cost unit).
  /// Retired copies (see unregister_copy) no longer count.
  [[nodiscard]] std::size_t stored_count() const noexcept {
    return global_to_local_.size();
  }
  /// Term slots consumed by stored copies (finer-grained storage cost);
  /// retired copies' slots are excluded even though the arena keeps them.
  [[nodiscard]] std::size_t term_slots() const noexcept {
    return store_.term_slots() - retired_term_slots_;
  }

  [[nodiscard]] const index::InvertedIndex& index() const noexcept {
    return index_;
  }
  [[nodiscard]] MetaStore& meta() noexcept { return meta_; }
  [[nodiscard]] const MetaStore& meta() const noexcept { return meta_; }

  /// Cumulative match-IO accounting across every match_full / match_single
  /// call since construction (or the last reset_accounting/clear) — the
  /// per-node matching-cost counters Fig. 9(b) plots.
  [[nodiscard]] const index::MatchAccounting& accounting_totals()
      const noexcept {
    return totals_;
  }
  [[nodiscard]] std::uint64_t match_calls() const noexcept {
    return match_calls_;
  }
  void reset_accounting() noexcept {
    totals_ = index::MatchAccounting{};
    match_calls_ = 0;
  }

  /// Drops every stored filter copy and index entry (used when the ring
  /// changes and schemes re-register; meta counters reset too).
  void clear();

 private:
  void translate(std::vector<FilterId>& local_ids) const;

  NodeId id_;
  index::FilterStore store_;                 // local copies, local ids
  index::InvertedIndex index_;               // local ids in posting lists
  MetaStore meta_;
  std::unordered_map<FilterId, FilterId> global_to_local_;
  std::vector<FilterId> local_to_global_;
  /// Posting entries currently referencing each local copy; a copy retires
  /// when its count returns to zero.
  std::vector<std::uint32_t> posting_refs_;
  std::size_t retired_term_slots_ = 0;
  // Plain integers, mutable: match_* are logically const reads driven by the
  // single-threaded simulator; accounting is a side-band observation. The
  // scratch is likewise reused across the node's (serial) matches so the
  // counter kernel never allocates once warm.
  mutable index::MatchScratch scratch_;
  mutable index::MatchAccounting totals_;
  mutable std::uint64_t match_calls_ = 0;
};

}  // namespace move::cluster
