#include "cluster/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace move::cluster {

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      ring_(config.vnodes_per_node),
      topology_(config.num_nodes, config.num_racks) {
  if (config_.num_nodes == 0) {
    throw std::invalid_argument("Cluster: num_nodes must be >= 1");
  }
  nodes_.reserve(config_.num_nodes);
  servers_.reserve(config_.num_nodes);
  alive_.assign(config_.num_nodes, true);
  for (std::uint32_t i = 0; i < config_.num_nodes; ++i) {
    const NodeId id{i};
    nodes_.emplace_back(id);
    servers_.emplace_back(engine_);
    servers_.back().set_congestion(config_.cost.congestion_per_queued_sec,
                                   config_.cost.congestion_max_inflation);
    ring_.add_node(id);
  }
}

void Cluster::fail_node(NodeId id) {
  if (id.value >= nodes_.size()) {
    throw std::out_of_range("Cluster::fail_node: unknown node");
  }
  alive_[id.value] = false;
  if (membership_ != nullptr) membership_->crash(id);
}

void Cluster::revive_node(NodeId id) {
  if (id.value >= nodes_.size()) {
    throw std::out_of_range("Cluster::revive_node: unknown node");
  }
  if (!ring_.contains(id)) {
    throw std::logic_error("Cluster::revive_node: node was decommissioned");
  }
  alive_[id.value] = true;
  if (membership_ != nullptr) membership_->restart(id);
}

void Cluster::revive_all() {
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (!alive_[i] && ring_.contains(NodeId{i})) revive_node(NodeId{i});
  }
}

void Cluster::fail_fraction(double fraction, common::SplitMix64& rng) {
  if (fraction <= 0.0) return;
  // Partial Fisher-Yates over the live set: exactly ceil(fraction * live)
  // distinct live victims, each chosen uniformly without replacement.
  auto live = live_nodes();
  const auto target = std::min<std::size_t>(
      live.size(), static_cast<std::size_t>(std::ceil(
                       fraction * static_cast<double>(live.size()))));
  for (std::size_t k = 0; k < target; ++k) {
    const auto pick =
        k + common::uniform_below(rng, live.size() - k);
    std::swap(live[k], live[pick]);
    fail_node(live[k]);
  }
}

void Cluster::attach_membership(kv::GossipMembership* membership) {
  membership_ = membership;
  if (membership_ == nullptr) return;
  // Register every current node (idempotent) and seed full mutual
  // knowledge of the live set, matching the converged state the paper's
  // O(1)-hop routing assumes at run start.
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (!ring_.contains(NodeId{i})) continue;
    membership_->add_node(NodeId{i});
    if (!alive_[i]) membership_->crash(NodeId{i});
  }
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (!ring_.contains(NodeId{i}) || !alive_[i]) continue;
    for (std::uint32_t j = 0; j < nodes_.size(); ++j) {
      if (i == j || !ring_.contains(NodeId{j})) continue;
      membership_->introduce(NodeId{i}, NodeId{j});
    }
  }
}

bool Cluster::routing_believes_alive(NodeId subject) const {
  if (subject.value >= alive_.size()) return false;
  if (routing_veto_ && routing_veto_(subject)) return false;
  if (membership_ == nullptr) return alive_[subject.value];
  for (std::uint32_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i]) return membership_->believes_alive(NodeId{i}, subject);
  }
  return false;  // no live coordinator: nothing can be routed
}

std::size_t Cluster::live_count() const {
  std::size_t n = 0;
  for (bool a : alive_) n += a;
  return n;
}

std::vector<NodeId> Cluster::live_nodes() const {
  std::vector<NodeId> out;
  for (std::uint32_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i]) out.push_back(NodeId{i});
  }
  return out;
}

void Cluster::reset_servers() {
  for (auto& s : servers_) s.reset();
}

NodeId Cluster::add_node() {
  const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  nodes_.emplace_back(id);
  servers_.emplace_back(engine_);
  servers_.back().set_congestion(config_.cost.congestion_per_queued_sec,
                                 config_.cost.congestion_max_inflation);
  alive_.push_back(true);
  topology_.add_node();
  ring_.add_node(id);
  if (membership_ != nullptr) {
    membership_->add_node(id);
    // A joiner knows one live seed (and is known by it); gossip spreads the
    // rest of the membership from there.
    for (std::uint32_t i = 0; i < alive_.size(); ++i) {
      if (i != id.value && alive_[i] && ring_.contains(NodeId{i})) {
        membership_->introduce(id, NodeId{i});
        membership_->introduce(NodeId{i}, id);
        break;
      }
    }
  }
  return id;
}

void Cluster::remove_node(NodeId id) {
  if (id.value >= nodes_.size()) {
    throw std::out_of_range("Cluster::remove_node: unknown node");
  }
  ring_.remove_node(id);
  nodes_[id.value].clear();
  alive_[id.value] = false;
  if (membership_ != nullptr) membership_->crash(id);
}

void Cluster::wipe_storage() {
  for (auto& node : nodes_) node.clear();
}

void Cluster::seal_storage() {
  for (auto& node : nodes_) node.seal();
}

void Cluster::export_metrics(obs::Registry& registry,
                             std::string_view prefix) const {
  const std::string base(prefix);
  registry.gauge(base + ".nodes").set(static_cast<double>(nodes_.size()));
  registry.gauge(base + ".live_nodes").set(static_cast<double>(live_count()));

  const sim::Time now = engine_.now();
  // Busy fraction is service time over elapsed virtual time; before any
  // event has run (now == 0) every node reports 0.
  const double elapsed = std::max(now, 1e-9);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const std::string node = std::to_string(i);
    const StorageNode& sn = nodes_[i];
    const sim::FifoServer& srv = servers_[i];
    const auto& acc = sn.accounting_totals();
    const auto set = [&](const char* name, double v) {
      registry.gauge(obs::labeled(base + ".node." + name, "node", node))
          .set(v);
    };
    set("stored_filters", static_cast<double>(sn.stored_count()));
    set("term_slots", static_cast<double>(sn.term_slots()));
    set("postings_scanned", static_cast<double>(acc.postings_scanned));
    set("candidates_verified", static_cast<double>(acc.candidates_verified));
    set("match_calls", static_cast<double>(sn.match_calls()));
    set("busy_us", srv.busy_us());
    set("queue_wait_us", srv.queue_wait_us());
    set("jobs_served", static_cast<double>(srv.jobs_served()));
    set("queue_depth", static_cast<double>(srv.queue_depth(now)));
    set("max_queue_depth", static_cast<double>(srv.max_queue_depth()));
    set("busy_fraction", now > 0 ? srv.busy_us() / elapsed : 0.0);
    set("alive", alive_[i] ? 1.0 : 0.0);
  }
  const auto setf = [&](const char* name, std::uint64_t v) {
    registry.gauge(base + ".fault." + name).set(static_cast<double>(v));
  };
  setf("failed_routes", fault_acc_.failed_routes);
  setf("route_retries", fault_acc_.route_retries);
  setf("dead_contacts", fault_acc_.dead_contacts);
  setf("failovers", fault_acc_.failovers);
  setf("hints_parked", fault_acc_.hints_parked);
  setf("hints_drained", fault_acc_.hints_drained);
  setf("repair_postings_moved", fault_acc_.repair_postings_moved);
  engine_.export_metrics(registry);
}

}  // namespace move::cluster
