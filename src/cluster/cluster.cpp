#include "cluster/cluster.hpp"

#include <stdexcept>

namespace move::cluster {

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      ring_(config.vnodes_per_node),
      topology_(config.num_nodes, config.num_racks) {
  if (config_.num_nodes == 0) {
    throw std::invalid_argument("Cluster: num_nodes must be >= 1");
  }
  nodes_.reserve(config_.num_nodes);
  servers_.reserve(config_.num_nodes);
  alive_.assign(config_.num_nodes, true);
  for (std::uint32_t i = 0; i < config_.num_nodes; ++i) {
    const NodeId id{i};
    nodes_.emplace_back(id);
    servers_.emplace_back(engine_);
    servers_.back().set_congestion(config_.cost.congestion_per_queued_sec,
                                   config_.cost.congestion_max_inflation);
    ring_.add_node(id);
  }
}

void Cluster::revive_all() { alive_.assign(nodes_.size(), true); }

void Cluster::fail_fraction(double fraction, common::SplitMix64& rng) {
  const auto target = static_cast<std::size_t>(
      fraction * static_cast<double>(nodes_.size()));
  std::size_t failed = 0;
  std::size_t guard = 0;
  while (failed < target && guard++ < nodes_.size() * 64) {
    const auto pick = common::uniform_below(rng, nodes_.size());
    if (alive_[pick]) {
      alive_[pick] = false;
      ++failed;
    }
  }
}

std::size_t Cluster::live_count() const {
  std::size_t n = 0;
  for (bool a : alive_) n += a;
  return n;
}

std::vector<NodeId> Cluster::live_nodes() const {
  std::vector<NodeId> out;
  for (std::uint32_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i]) out.push_back(NodeId{i});
  }
  return out;
}

void Cluster::reset_servers() {
  for (auto& s : servers_) s.reset();
}

NodeId Cluster::add_node() {
  const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  nodes_.emplace_back(id);
  servers_.emplace_back(engine_);
  servers_.back().set_congestion(config_.cost.congestion_per_queued_sec,
                                 config_.cost.congestion_max_inflation);
  alive_.push_back(true);
  topology_.add_node();
  ring_.add_node(id);
  return id;
}

void Cluster::remove_node(NodeId id) {
  if (id.value >= nodes_.size()) {
    throw std::out_of_range("Cluster::remove_node: unknown node");
  }
  ring_.remove_node(id);
  nodes_[id.value].clear();
  alive_[id.value] = false;
}

void Cluster::wipe_storage() {
  for (auto& node : nodes_) node.clear();
}

}  // namespace move::cluster
