#include "cluster/cluster.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace move::cluster {

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      ring_(config.vnodes_per_node),
      topology_(config.num_nodes, config.num_racks) {
  if (config_.num_nodes == 0) {
    throw std::invalid_argument("Cluster: num_nodes must be >= 1");
  }
  nodes_.reserve(config_.num_nodes);
  servers_.reserve(config_.num_nodes);
  alive_.assign(config_.num_nodes, true);
  for (std::uint32_t i = 0; i < config_.num_nodes; ++i) {
    const NodeId id{i};
    nodes_.emplace_back(id);
    servers_.emplace_back(engine_);
    servers_.back().set_congestion(config_.cost.congestion_per_queued_sec,
                                   config_.cost.congestion_max_inflation);
    ring_.add_node(id);
  }
}

void Cluster::revive_all() { alive_.assign(nodes_.size(), true); }

void Cluster::fail_fraction(double fraction, common::SplitMix64& rng) {
  const auto target = static_cast<std::size_t>(
      fraction * static_cast<double>(nodes_.size()));
  std::size_t failed = 0;
  std::size_t guard = 0;
  while (failed < target && guard++ < nodes_.size() * 64) {
    const auto pick = common::uniform_below(rng, nodes_.size());
    if (alive_[pick]) {
      alive_[pick] = false;
      ++failed;
    }
  }
}

std::size_t Cluster::live_count() const {
  std::size_t n = 0;
  for (bool a : alive_) n += a;
  return n;
}

std::vector<NodeId> Cluster::live_nodes() const {
  std::vector<NodeId> out;
  for (std::uint32_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i]) out.push_back(NodeId{i});
  }
  return out;
}

void Cluster::reset_servers() {
  for (auto& s : servers_) s.reset();
}

NodeId Cluster::add_node() {
  const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  nodes_.emplace_back(id);
  servers_.emplace_back(engine_);
  servers_.back().set_congestion(config_.cost.congestion_per_queued_sec,
                                 config_.cost.congestion_max_inflation);
  alive_.push_back(true);
  topology_.add_node();
  ring_.add_node(id);
  return id;
}

void Cluster::remove_node(NodeId id) {
  if (id.value >= nodes_.size()) {
    throw std::out_of_range("Cluster::remove_node: unknown node");
  }
  ring_.remove_node(id);
  nodes_[id.value].clear();
  alive_[id.value] = false;
}

void Cluster::wipe_storage() {
  for (auto& node : nodes_) node.clear();
}

void Cluster::seal_storage() {
  for (auto& node : nodes_) node.seal();
}

void Cluster::export_metrics(obs::Registry& registry,
                             std::string_view prefix) const {
  const std::string base(prefix);
  registry.gauge(base + ".nodes").set(static_cast<double>(nodes_.size()));
  registry.gauge(base + ".live_nodes").set(static_cast<double>(live_count()));

  const sim::Time now = engine_.now();
  // Busy fraction is service time over elapsed virtual time; before any
  // event has run (now == 0) every node reports 0.
  const double elapsed = std::max(now, 1e-9);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const std::string node = std::to_string(i);
    const StorageNode& sn = nodes_[i];
    const sim::FifoServer& srv = servers_[i];
    const auto& acc = sn.accounting_totals();
    const auto set = [&](const char* name, double v) {
      registry.gauge(obs::labeled(base + ".node." + name, "node", node))
          .set(v);
    };
    set("stored_filters", static_cast<double>(sn.stored_count()));
    set("term_slots", static_cast<double>(sn.term_slots()));
    set("postings_scanned", static_cast<double>(acc.postings_scanned));
    set("candidates_verified", static_cast<double>(acc.candidates_verified));
    set("match_calls", static_cast<double>(sn.match_calls()));
    set("busy_us", srv.busy_us());
    set("queue_wait_us", srv.queue_wait_us());
    set("jobs_served", static_cast<double>(srv.jobs_served()));
    set("queue_depth", static_cast<double>(srv.queue_depth(now)));
    set("max_queue_depth", static_cast<double>(srv.max_queue_depth()));
    set("busy_fraction", now > 0 ? srv.busy_us() / elapsed : 0.0);
    set("alive", alive_[i] ? 1.0 : 0.0);
  }
  engine_.export_metrics(registry);
}

}  // namespace move::cluster
