#include "cluster/meta_store.hpp"

// MetaStore is fully inline; this TU anchors the library target.
