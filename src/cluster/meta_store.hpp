#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/types.hpp"

/// Per-node meta-data store (Fig. 3).
///
/// Each node records, per term it is home for, how many filters registered
/// with that term (popularity numerator) and how many documents arrived for
/// it (frequency numerator). A dedicated collector node aggregates these
/// into the p'/q' statistics that drive re-allocation (§V "Solving the Move
/// optimization problem"); the passive allocation policy is fed from here.
namespace move::cluster {

class MetaStore {
 public:
  void record_filter(TermId term, std::uint64_t copies = 1) {
    filters_per_term_[term] += copies;
    total_filters_ += copies;
  }

  void record_document(TermId term) {
    ++docs_per_term_[term];
    ++total_docs_;
  }

  /// Reverses record_filter when a copy's posting entry is unregistered
  /// (live migration retiring a displaced grid copy). Clamped at zero —
  /// a double-retire cannot drive the popularity stats negative.
  void remove_filter(TermId term, std::uint64_t copies = 1) {
    auto it = filters_per_term_.find(term);
    if (it == filters_per_term_.end()) return;
    const std::uint64_t dec = copies < it->second ? copies : it->second;
    it->second -= dec;
    if (it->second == 0) filters_per_term_.erase(it);
    total_filters_ -= dec;
  }

  [[nodiscard]] std::uint64_t filters_for(TermId term) const {
    auto it = filters_per_term_.find(term);
    return it == filters_per_term_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::uint64_t docs_for(TermId term) const {
    auto it = docs_per_term_.find(term);
    return it == docs_per_term_.end() ? 0 : it->second;
  }

  [[nodiscard]] std::uint64_t total_filters() const noexcept {
    return total_filters_;
  }
  [[nodiscard]] std::uint64_t total_docs() const noexcept {
    return total_docs_;
  }
  [[nodiscard]] std::size_t tracked_terms() const noexcept {
    return filters_per_term_.size();
  }

  /// Clears the document counters (the paper renews q_i estimates every 10
  /// minutes from fresh arrivals).
  void reset_document_counters() {
    docs_per_term_.clear();
    total_docs_ = 0;
  }

 private:
  std::unordered_map<TermId, std::uint64_t> filters_per_term_;
  std::unordered_map<TermId, std::uint64_t> docs_per_term_;
  std::uint64_t total_filters_ = 0;
  std::uint64_t total_docs_ = 0;
};

}  // namespace move::cluster
