#include "bloom/bloom_filter.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "common/hash.hpp"

namespace move::bloom {

namespace {

std::size_t bits_for(std::size_t n, double p) {
  if (n == 0) n = 1;
  p = std::clamp(p, 1e-9, 0.5);
  const double ln2 = std::log(2.0);
  const double m = -static_cast<double>(n) * std::log(p) / (ln2 * ln2);
  return std::max<std::size_t>(64, static_cast<std::size_t>(std::ceil(m)));
}

std::uint32_t hashes_for(std::size_t m, std::size_t n) {
  if (n == 0) n = 1;
  const double k = static_cast<double>(m) / static_cast<double>(n) *
                   std::log(2.0);
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(std::round(k)));
}

}  // namespace

BloomFilter::BloomFilter(std::size_t expected_items, double target_fpr)
    : BloomFilter(bits_for(expected_items, target_fpr),
                  hashes_for(bits_for(expected_items, target_fpr),
                             expected_items)) {}

BloomFilter::BloomFilter(std::size_t num_bits, std::uint32_t num_hashes)
    : num_bits_(num_bits), hashes_(num_hashes) {
  if (num_bits == 0) throw std::invalid_argument("BloomFilter: zero bits");
  if (num_hashes == 0) throw std::invalid_argument("BloomFilter: zero hashes");
  bits_.assign((num_bits + 63) / 64, 0);
}

std::pair<std::uint64_t, std::uint64_t> BloomFilter::base_hashes(
    TermId term) const noexcept {
  const std::uint64_t h1 = common::mix64(term.value);
  const std::uint64_t h2 = common::fnv1a64(static_cast<std::uint64_t>(term.value));
  return {h1, h2};
}

void BloomFilter::insert(TermId term) noexcept {
  const auto [h1, h2] = base_hashes(term);
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = common::double_hash(h1, h2, i) % num_bits_;
    bits_[bit >> 6] |= (1ULL << (bit & 63));
  }
  ++insertions_;
}

bool BloomFilter::may_contain(TermId term) const noexcept {
  const auto [h1, h2] = base_hashes(term);
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = common::double_hash(h1, h2, i) % num_bits_;
    if ((bits_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
  }
  return true;
}

void BloomFilter::clear() noexcept {
  std::fill(bits_.begin(), bits_.end(), 0);
  insertions_ = 0;
}

double BloomFilter::expected_fpr() const noexcept {
  const double k = hashes_;
  const double n = static_cast<double>(insertions_);
  const double m = static_cast<double>(num_bits_);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

double BloomFilter::fill_ratio() const noexcept {
  std::size_t set = 0;
  for (std::uint64_t word : bits_) set += std::popcount(word);
  return static_cast<double>(set) / static_cast<double>(num_bits_);
}

}  // namespace move::bloom
