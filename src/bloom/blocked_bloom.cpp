#include "bloom/blocked_bloom.hpp"

#include <algorithm>
#include <bit>

#include "common/hash.hpp"
#include "common/simd.hpp"

namespace move::bloom {

namespace {

/// One odd multiplier per block word (the Impala/Arrow split-block salts):
/// lane i's bit index is the top 5 bits of `h32 * kSalt[i]`, so each insert
/// sets exactly one bit in each of the block's eight words.
constexpr std::uint32_t kSalt[8] = {0x47b6137bu, 0x44974d91u, 0x8824ad5bu,
                                    0xa2b7289du, 0x705495c7u, 0x2df1424bu,
                                    0x9efc4947u, 0x5c6bfb31u};

/// Scalar twin of the lane-mask computation — bit-identical to the SIMD
/// paths (u32 wraparound multiply + shift is the same math everywhere).
inline void lane_masks(std::uint32_t h32, std::uint32_t out[8]) noexcept {
  for (int i = 0; i < 8; ++i) {
    out[i] = 1u << ((h32 * kSalt[i]) >> 27);
  }
}

}  // namespace

BlockedBloomFilter::BlockedBloomFilter(std::size_t expected_items,
                                       std::size_t bits_per_key) {
  if (expected_items == 0) expected_items = 1;
  if (bits_per_key == 0) bits_per_key = 1;
  // Round the bit budget up to whole 256-bit blocks.
  num_blocks_ = (expected_items * bits_per_key + 255) / 256;
  num_blocks_ = std::max<std::size_t>(1, num_blocks_);
  words_.assign(num_blocks_ * 8, 0);
}

std::size_t BlockedBloomFilter::block_of(std::uint64_t hash) const noexcept {
  // Fast-range reduction of the high half onto [0, num_blocks): unbiased
  // enough for summaries and cheaper than a modulo on the probe path.
  const std::uint64_t hi = hash >> 32;
  return static_cast<std::size_t>(
      (hi * static_cast<std::uint64_t>(num_blocks_)) >> 32);
}

void BlockedBloomFilter::insert(TermId term) noexcept {
  const std::uint64_t h = common::mix64(term.value);
  std::uint32_t* block = words_.data() + block_of(h) * 8;
  const auto h32 = static_cast<std::uint32_t>(h);
#if defined(MOVE_SIMD_AVX2)
  if (!simd::dispatch_scalar()) {
    const __m256i salt = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kSalt));
    const __m256i shift =
        _mm256_srli_epi32(_mm256_mullo_epi32(_mm256_set1_epi32(
                              static_cast<int>(h32)), salt), 27);
    const __m256i mask = _mm256_sllv_epi32(_mm256_set1_epi32(1), shift);
    auto* p = reinterpret_cast<__m256i*>(block);
    _mm256_storeu_si256(p, _mm256_or_si256(_mm256_loadu_si256(p), mask));
    ++insertions_;
    return;
  }
#endif
  std::uint32_t mask[8];
  lane_masks(h32, mask);
  for (int i = 0; i < 8; ++i) block[i] |= mask[i];
  ++insertions_;
}

bool BlockedBloomFilter::may_contain(TermId term) const noexcept {
  const std::uint64_t h = common::mix64(term.value);
  const std::uint32_t* block = words_.data() + block_of(h) * 8;
  const auto h32 = static_cast<std::uint32_t>(h);
#if defined(MOVE_SIMD_AVX2)
  if (!simd::dispatch_scalar()) {
    const __m256i salt = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kSalt));
    const __m256i shift =
        _mm256_srli_epi32(_mm256_mullo_epi32(_mm256_set1_epi32(
                              static_cast<int>(h32)), salt), 27);
    const __m256i mask = _mm256_sllv_epi32(_mm256_set1_epi32(1), shift);
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block));
    return _mm256_testc_si256(b, mask) != 0;  // (~b & mask) == 0
  }
#elif defined(MOVE_SIMD_NEON) && defined(__aarch64__)
  if (!simd::dispatch_scalar()) {
    const uint32x4_t h_v = vdupq_n_u32(h32);
    const uint32x4_t salt_lo = vld1q_u32(kSalt);
    const uint32x4_t salt_hi = vld1q_u32(kSalt + 4);
    const uint32x4_t one = vdupq_n_u32(1);
    const uint32x4_t mask_lo = vshlq_u32(
        one, vreinterpretq_s32_u32(vshrq_n_u32(vmulq_u32(h_v, salt_lo), 27)));
    const uint32x4_t mask_hi = vshlq_u32(
        one, vreinterpretq_s32_u32(vshrq_n_u32(vmulq_u32(h_v, salt_hi), 27)));
    const uint32x4_t hit_lo =
        vceqq_u32(vandq_u32(vld1q_u32(block), mask_lo), mask_lo);
    const uint32x4_t hit_hi =
        vceqq_u32(vandq_u32(vld1q_u32(block + 4), mask_hi), mask_hi);
    return vminvq_u32(vandq_u32(hit_lo, hit_hi)) == 0xffffffffu;
  }
#endif
  std::uint32_t mask[8];
  lane_masks(h32, mask);
  for (int i = 0; i < 8; ++i) {
    if ((block[i] & mask[i]) == 0) return false;
  }
  return true;
}

void BlockedBloomFilter::clear() noexcept {
  std::fill(words_.begin(), words_.end(), 0u);
  insertions_ = 0;
}

double BlockedBloomFilter::fill_ratio() const noexcept {
  std::size_t set = 0;
  for (const std::uint32_t w : words_) set += std::popcount(w);
  return static_cast<double>(set) /
         static_cast<double>(words_.size() * 32);
}

}  // namespace move::bloom
