#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "common/types.hpp"

/// Cache-line-blocked ("split block") Bloom filter over TermIds — the
/// per-home-node term summary behind the matching fast path.
///
/// Where `BloomFilter` (double hashing, k scattered probes) backs the
/// dissemination-side pre-screen, this variant is built for the *matching*
/// hot loop: every key maps to one 256-bit block (8 × u32 words) and sets
/// exactly one bit per word, so both insert and probe touch a single cache
/// line and compile to one AVX2/NEON register op. The construction follows
/// the split-block design used by Impala/Arrow (multiply-shift lane hashes
/// from eight odd salts).
///
/// Determinism contract: the bit layout and every membership answer depend
/// only on integer math over the key — the scalar and SIMD probe paths are
/// bit-identical by construction, so flipping `MOVE_FORCE_SCALAR` can never
/// change what the summary admits. No false negatives, ever; false
/// positives only cost a wasted (empty) posting-list probe.
namespace move::bloom {

class BlockedBloomFilter {
 public:
  /// Sizes the filter at `bits_per_key` total bits per expected insertion
  /// (default 16 → ~0.3-0.5 % false-positive rate at design load; the
  /// summary of a 10^5-term node costs ~200 KiB).
  explicit BlockedBloomFilter(std::size_t expected_items,
                              std::size_t bits_per_key = 16);

  void insert(TermId term) noexcept;
  /// True if `term` might have been inserted; false only if definitely not.
  [[nodiscard]] bool may_contain(TermId term) const noexcept;

  void clear() noexcept;

  [[nodiscard]] std::size_t block_count() const noexcept {
    return num_blocks_;
  }
  [[nodiscard]] std::size_t byte_size() const noexcept {
    return words_.size() * sizeof(std::uint32_t);
  }
  [[nodiscard]] std::size_t insertion_count() const noexcept {
    return insertions_;
  }

  /// Fraction of set bits (diagnostic; well under 0.5 at design load).
  [[nodiscard]] double fill_ratio() const noexcept;

 private:
  [[nodiscard]] std::size_t block_of(std::uint64_t hash) const noexcept;

  std::size_t num_blocks_;
  std::size_t insertions_ = 0;
  std::vector<std::uint32_t> words_;  // num_blocks_ * 8, one block = 8 words
};

}  // namespace move::bloom
