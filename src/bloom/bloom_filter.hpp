#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"

/// Bloom filter over TermIds.
///
/// §V of the paper: during dissemination a document term t_i is only
/// forwarded to its home node if "t_i ∈ BF, where BF is the bloom filter
/// summarizing all terms in registered filters". This cuts forwarding cost
/// for document terms that no filter subscribes to. Standard double-hashing
/// construction (Kirsch–Mitzenmacher).
namespace move::bloom {

class BloomFilter {
 public:
  /// Sizes the filter for `expected_items` insertions at `target_fpr` false
  /// positive rate: m = -n ln p / (ln 2)^2 bits, k = (m/n) ln 2 hashes.
  BloomFilter(std::size_t expected_items, double target_fpr);

  /// Explicit geometry (for tests and serialization round-trips).
  BloomFilter(std::size_t num_bits, std::uint32_t num_hashes);

  void insert(TermId term) noexcept;
  /// True if `term` might have been inserted; false only if definitely not.
  [[nodiscard]] bool may_contain(TermId term) const noexcept;

  void clear() noexcept;

  [[nodiscard]] std::size_t bit_count() const noexcept { return num_bits_; }
  [[nodiscard]] std::uint32_t hash_count() const noexcept { return hashes_; }
  [[nodiscard]] std::size_t insertion_count() const noexcept {
    return insertions_;
  }

  /// Expected false-positive rate given the current number of insertions:
  /// (1 - e^(-kn/m))^k.
  [[nodiscard]] double expected_fpr() const noexcept;

  /// Fraction of set bits (diagnostic; ~50 % at design load).
  [[nodiscard]] double fill_ratio() const noexcept;

 private:
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> base_hashes(
      TermId term) const noexcept;

  std::size_t num_bits_;
  std::uint32_t hashes_;
  std::size_t insertions_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace move::bloom
