#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "kv/ring.hpp"
#include "kv/topology.hpp"

/// Replica-node selection strategies (§V "Selection of allocated nodes").
///
/// When MOVE allocates the filters of a home node onto n extra nodes it must
/// pick *which* nodes. The paper discusses three policies:
///  * ring successors — spreads replicas across racks (availability) but
///    moves filters over inter-rack links (throughput cost);
///  * rack-aware    — same-rack peers (cheap, fast) but a whole-rack failure
///    loses every copy;
///  * hybrid (MOVE) — half successors, half rack peers, balancing both.
namespace move::kv {

enum class PlacementPolicy { kRingSuccessors, kRackAware, kHybrid };

/// Returns up to `count` distinct nodes (never including `home`) on which to
/// place filters allocated from `home`. If the rack (or ring) cannot supply
/// enough nodes, the other pool tops the selection up; the result is capped
/// at cluster size - 1.
///
/// @param key_hash ring position of the home node's key (used for the
///                 successor walk so placement is deterministic per term).
/// @param rng      used only to break ties when topping up from the full
///                 membership list.
[[nodiscard]] std::vector<NodeId> select_replica_nodes(
    PlacementPolicy policy, NodeId home, std::uint64_t key_hash,
    std::size_t count, const HashRing& ring, const RackTopology& topology,
    common::SplitMix64& rng);

/// Load-aware variant used by the MOVE allocator: the dedicated collector
/// node (§V) computes every home's allocation at once, so it can order each
/// policy pool by the expected load already assigned to the candidates
/// (`slot_load`, indexed by NodeId) instead of placing blindly. The policy
/// still bounds *which* nodes are eligible (rack peers / ring successors /
/// both); the weighting only decides among them, keeping the availability
/// characteristics of the policy intact.
[[nodiscard]] std::vector<NodeId> select_replica_nodes_weighted(
    PlacementPolicy policy, NodeId home, std::uint64_t key_hash,
    std::size_t count, const HashRing& ring, const RackTopology& topology,
    std::span<const double> slot_load);

/// Rack-diverse replica set of a key — Cassandra's NetworkTopologyStrategy
/// walk: the home node first, then the clockwise successor walk, but a node
/// whose rack is already represented is skipped while racks remain
/// unrepresented; once every member rack holds a replica (or the walk
/// exhausts the ring) the skipped nodes fill the remaining slots in walk
/// order. Guarantees, for any join/leave history:
///  * size  == min(replicas, ring.node_count());
///  * nodes are distinct, home included exactly once (first);
///  * replicas occupy min(replicas, racks-present-among-members) distinct
///    racks — fully rack-diverse whenever racks >= replicas;
///  * depends only on current membership (a freshly built ring with the same
///    members yields the identical set).
///
/// Nodes the topology does not know (rack_of would throw) are treated as
/// each occupying a private rack — they never block diversity.
[[nodiscard]] std::vector<NodeId> replica_set(const HashRing& ring,
                                              const RackTopology& topology,
                                              std::uint64_t key_hash,
                                              std::size_t replicas);

}  // namespace move::kv
