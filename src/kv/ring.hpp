#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace move::obs {
class Counter;
class Registry;
}

/// Dynamo/Cassandra-style consistent-hash ring with virtual nodes.
///
/// This is the O(1)-hop DHT substrate the paper builds on (§II "Key/value
/// platforms"): every member holds the full ring (as gossip converges to in
/// Dynamo), so the home node of any key is resolved locally in one hop. The
/// ring maps a 64-bit key hash to the first virtual-node token clockwise;
/// virtual nodes smooth the load imbalance of random token assignment.
namespace move::kv {

class HashRing {
 public:
  /// @param vnodes_per_node number of tokens each physical node owns.
  explicit HashRing(std::uint32_t vnodes_per_node = 64);

  /// Adds a node; its tokens are derived deterministically from the node id,
  /// so all members compute an identical ring without coordination.
  void add_node(NodeId node);

  /// Removes a node and its tokens; keys it owned fall to ring successors.
  void remove_node(NodeId node);

  [[nodiscard]] bool contains(NodeId node) const;
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::uint32_t vnodes_per_node() const noexcept {
    return vnodes_;
  }

  /// Home node of a raw 64-bit key hash. Precondition: ring is non-empty.
  [[nodiscard]] NodeId home_of_hash(std::uint64_t key_hash) const;

  /// Home node of a string key (hashed with FNV-1a).
  [[nodiscard]] NodeId home_of_key(std::string_view key) const;

  /// Home node of a term (the paper's primary placement: the home node of
  /// term t registers all filters containing t).
  [[nodiscard]] NodeId home_of_term(TermId term) const;

  /// The `count` distinct physical nodes that follow the key's home node
  /// clockwise (home excluded). This is Cassandra's successor walk, used for
  /// ring-based replica placement (§V "Selection of allocated nodes").
  [[nodiscard]] std::vector<NodeId> successors(std::uint64_t key_hash,
                                               std::size_t count) const;

  /// All member nodes, ascending by id (for enumeration in benches/tests).
  [[nodiscard]] std::vector<NodeId> members() const;

  /// Fraction of hash space owned by each node (diagnostic for balance
  /// tests; with enough vnodes each share approaches 1/N).
  [[nodiscard]] std::vector<double> ownership() const;

  /// Attaches live counters (`<prefix>.lookups`, `<prefix>.successor_walks`,
  /// `<prefix>.membership_changes`) to `registry`. The ring holds plain
  /// pointers into the registry, which must outlive it (or detach with
  /// attach_metrics-to-another-registry). Lookup cost is one relaxed
  /// fetch_add when attached, zero when not.
  void attach_metrics(obs::Registry& registry,
                      std::string_view prefix = "kv.ring");

 private:
  struct Token {
    std::uint64_t position;
    NodeId owner;
    friend bool operator<(const Token& a, const Token& b) {
      return a.position < b.position ||
             (a.position == b.position && a.owner < b.owner);
    }
  };

  [[nodiscard]] std::vector<Token>::const_iterator token_for(
      std::uint64_t key_hash) const;

  std::uint32_t vnodes_;
  std::vector<Token> tokens_;  // sorted by position
  std::vector<NodeId> nodes_;  // sorted by id
  obs::Counter* m_lookups_ = nullptr;
  obs::Counter* m_successor_walks_ = nullptr;
  obs::Counter* m_membership_changes_ = nullptr;
};

}  // namespace move::kv
