#include "kv/ring.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/hash.hpp"
#include "obs/metrics.hpp"

namespace move::kv {

HashRing::HashRing(std::uint32_t vnodes_per_node) : vnodes_(vnodes_per_node) {
  if (vnodes_ == 0) {
    throw std::invalid_argument("HashRing: vnodes_per_node must be >= 1");
  }
}

void HashRing::attach_metrics(obs::Registry& registry,
                              std::string_view prefix) {
  const std::string p(prefix);
  m_lookups_ = &registry.counter(p + ".lookups");
  m_successor_walks_ = &registry.counter(p + ".successor_walks");
  m_membership_changes_ = &registry.counter(p + ".membership_changes");
}

void HashRing::add_node(NodeId node) {
  if (contains(node)) return;
  if (m_membership_changes_) m_membership_changes_->inc();
  nodes_.insert(std::lower_bound(nodes_.begin(), nodes_.end(), node), node);
  tokens_.reserve(tokens_.size() + vnodes_);
  for (std::uint32_t v = 0; v < vnodes_; ++v) {
    // Token positions depend only on (node, vnode index), so every member
    // derives the identical ring — no gossip rounds needed.
    const std::uint64_t pos =
        common::hash_combine(common::mix64(node.value + 1), v);
    tokens_.push_back(Token{pos, node});
  }
  std::sort(tokens_.begin(), tokens_.end());
}

void HashRing::remove_node(NodeId node) {
  auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  if (it == nodes_.end() || *it != node) return;
  if (m_membership_changes_) m_membership_changes_->inc();
  nodes_.erase(it);
  std::erase_if(tokens_, [node](const Token& t) { return t.owner == node; });
}

bool HashRing::contains(NodeId node) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), node);
}

std::vector<HashRing::Token>::const_iterator HashRing::token_for(
    std::uint64_t key_hash) const {
  if (tokens_.empty()) {
    throw std::logic_error("HashRing: lookup on empty ring");
  }
  auto it = std::lower_bound(
      tokens_.begin(), tokens_.end(), key_hash,
      [](const Token& t, std::uint64_t h) { return t.position < h; });
  if (it == tokens_.end()) it = tokens_.begin();  // wrap around
  return it;
}

NodeId HashRing::home_of_hash(std::uint64_t key_hash) const {
  if (m_lookups_) m_lookups_->inc();
  return token_for(key_hash)->owner;
}

NodeId HashRing::home_of_key(std::string_view key) const {
  return home_of_hash(common::fnv1a64(key));
}

NodeId HashRing::home_of_term(TermId term) const {
  return home_of_hash(common::mix64(term.value));
}

std::vector<NodeId> HashRing::successors(std::uint64_t key_hash,
                                         std::size_t count) const {
  std::vector<NodeId> out;
  if (tokens_.empty() || count == 0) return out;
  if (m_successor_walks_) m_successor_walks_->inc();
  count = std::min(count, nodes_.size() - 1);
  const NodeId home = token_for(key_hash)->owner;
  auto it = token_for(key_hash);
  // Walk clockwise collecting distinct physical owners, skipping the home
  // node itself and nodes already collected.
  for (std::size_t steps = 0; steps < tokens_.size() && out.size() < count;
       ++steps) {
    ++it;
    if (it == tokens_.end()) it = tokens_.begin();
    const NodeId owner = it->owner;
    if (owner == home) continue;
    if (std::find(out.begin(), out.end(), owner) == out.end()) {
      out.push_back(owner);
    }
  }
  return out;
}

std::vector<NodeId> HashRing::members() const { return nodes_; }

std::vector<double> HashRing::ownership() const {
  std::vector<double> shares(nodes_.empty() ? 0 : nodes_.back().value + 1,
                             0.0);
  if (tokens_.empty()) return shares;
  const double full = 18446744073709551616.0;  // 2^64
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    const Token& cur = tokens_[i];
    const Token& prev = tokens_[i == 0 ? tokens_.size() - 1 : i - 1];
    // Arc owned by cur: (prev.position, cur.position], wrapping at i == 0.
    const std::uint64_t arc = cur.position - prev.position;  // wraps mod 2^64
    shares[cur.owner.value] += static_cast<double>(arc) / full;
  }
  return shares;
}

}  // namespace move::kv
