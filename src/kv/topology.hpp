#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

/// Rack topology ("snitch" in Cassandra terms).
///
/// §V of the paper selects replica nodes either along the ring or inside the
/// same rack as the home node, and Fig. 9(c,d) shows the
/// throughput/availability trade-off when whole racks fail. The topology
/// assigns each node to a rack and answers rack-locality queries.
namespace move::kv {

class RackTopology {
 public:
  /// Distributes `node_count` nodes round-robin over `rack_count` racks
  /// (node i lives in rack i % rack_count), mirroring how sequentially
  /// racked blades are cabled in a real cluster row.
  RackTopology(std::size_t node_count, std::size_t rack_count);

  [[nodiscard]] std::size_t rack_of(NodeId node) const;
  [[nodiscard]] std::size_t rack_count() const noexcept { return rack_count_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return rack_of_.size();
  }

  /// All nodes in the given rack, ascending.
  [[nodiscard]] std::vector<NodeId> nodes_in_rack(std::size_t rack) const;

  /// Nodes sharing a rack with `node`, excluding `node` itself.
  [[nodiscard]] std::vector<NodeId> rack_peers(NodeId node) const;

  /// Registers one more node (rack chosen round-robin, continuing the
  /// construction pattern). Returns its rack.
  std::size_t add_node();

 private:
  std::size_t rack_count_;
  std::vector<std::uint32_t> rack_of_;  // indexed by NodeId
};

}  // namespace move::kv
