#include "kv/kv_store.hpp"

#include <algorithm>

#include "common/hash.hpp"
#include "kv/placement.hpp"
#include "obs/metrics.hpp"

namespace move::kv {

KeyValueStore::KeyValueStore(const HashRing& ring, std::size_t replicas,
                             LivenessFn alive)
    : ring_(&ring), replicas_(std::max<std::size_t>(1, replicas)),
      alive_(std::move(alive)) {}

std::unordered_map<std::string, std::string>& KeyValueStore::shard(
    NodeId node) {
  return shards_[node.value];
}

std::vector<NodeId> KeyValueStore::owners(std::string_view key) const {
  std::vector<NodeId> out;
  if (ring_->node_count() == 0) return out;
  const std::uint64_t h = common::fnv1a64(key);
  if (topology_) return replica_set(*ring_, *topology_, h, replicas_);
  out.push_back(ring_->home_of_hash(h));
  for (NodeId succ : ring_->successors(h, replicas_ - 1)) {
    out.push_back(succ);
  }
  return out;
}

bool KeyValueStore::park_hint(std::uint64_t key_hash, NodeId target,
                              std::string_view key, std::string_view value) {
  // The hint holder is the first live node on the successor walk that is
  // NOT itself an owner — Dynamo's "next node on the preference list".
  const auto owner_set = owners(key);
  const auto is_owner = [&](NodeId n) {
    return std::find(owner_set.begin(), owner_set.end(), n) !=
           owner_set.end();
  };
  for (NodeId cand :
       ring_->successors(key_hash, owner_set.size() + replicas_ + 4)) {
    if (is_owner(cand) || !alive(cand)) continue;
    auto& queue = hints_[cand.value];
    // Overwrite an existing hint for the same (target, key): last write
    // wins, exactly as it would on the owner itself.
    for (auto it = queue.rbegin(); it != queue.rend(); ++it) {
      if (it->target == target.value && it->key == key) {
        it->value = std::string(value);
        return true;
      }
    }
    queue.push_back(Hint{target.value, std::string(key), std::string(value)});
    if (m_hints_parked_) m_hints_parked_->inc();
    if (fault_acc_ != nullptr) ++fault_acc_->hints_parked;
    return true;
  }
  // No live stand-in either: the write is simply sloppy-lost for this owner.
  return false;
}

std::size_t KeyValueStore::put(std::string_view key, std::string_view value) {
  if (m_puts_) m_puts_->inc();
  const std::uint64_t h = common::fnv1a64(key);
  std::size_t written = 0;
  for (NodeId node : owners(key)) {
    if (!alive(node)) {
      park_hint(h, node, key, value);
      continue;
    }
    shard(node).insert_or_assign(std::string(key), std::string(value));
    ++written;
  }
  if (m_replica_writes_) m_replica_writes_->add(written);
  return written;
}

std::size_t KeyValueStore::drain_hints(NodeId recovered) {
  std::size_t delivered = 0;
  // Inbound: hints targeted at the recovered node, parked on live holders.
  for (auto& [holder, queue] : hints_) {
    if (!alive(NodeId{holder})) continue;  // holder down: hints unavailable
    auto keep = queue.begin();
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (it->target == recovered.value) {
        shard(recovered).insert_or_assign(it->key, it->value);
        ++delivered;
      } else {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    queue.erase(keep, queue.end());
  }
  // Outbound: hints the recovered node itself was holding, now deliverable.
  if (auto held = hints_.find(recovered.value); held != hints_.end()) {
    auto& queue = held->second;
    auto keep = queue.begin();
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (alive(NodeId{it->target})) {
        shard(NodeId{it->target}).insert_or_assign(it->key, it->value);
        ++delivered;
      } else {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    queue.erase(keep, queue.end());
  }
  if (delivered > 0) {
    if (m_hints_drained_) m_hints_drained_->add(delivered);
    if (fault_acc_ != nullptr) fault_acc_->hints_drained += delivered;
  }
  return delivered;
}

std::size_t KeyValueStore::repark_hints(NodeId failed_holder) {
  auto held = hints_.find(failed_holder.value);
  if (held == hints_.end() || held->second.empty()) return 0;
  // Detach the queue first: re-parking goes through park_hint, which must
  // not walk back onto the dying holder's own queue mid-iteration.
  std::vector<Hint> queue = std::move(held->second);
  hints_.erase(held);
  std::size_t moved = 0;
  for (Hint& hint : queue) {
    const NodeId target{hint.target};
    if (alive(target)) {
      // The owner came back while the hint sat on the (now dead) holder:
      // deliver straight to it, exactly what drain would have done.
      shard(target).insert_or_assign(hint.key, hint.value);
      if (m_hints_drained_) m_hints_drained_->inc();
      if (fault_acc_ != nullptr) ++fault_acc_->hints_drained;
      ++moved;
      continue;
    }
    if (park_hint(common::fnv1a64(hint.key), target, hint.key, hint.value)) {
      ++moved;
    }
  }
  return moved;
}

std::size_t KeyValueStore::handoff_queue_depth() const {
  std::size_t n = 0;
  for (const auto& [holder, queue] : hints_) n += queue.size();
  return n;
}

std::size_t KeyValueStore::hints_on(NodeId holder) const {
  auto it = hints_.find(holder.value);
  return it == hints_.end() ? 0 : it->second.size();
}

std::optional<std::string> KeyValueStore::get(std::string_view key) const {
  if (m_gets_) m_gets_->inc();
  for (NodeId node : owners(key)) {
    if (!alive(node)) continue;
    auto shard_it = shards_.find(node.value);
    if (shard_it == shards_.end()) continue;
    auto it = shard_it->second.find(std::string(key));
    if (it != shard_it->second.end()) {
      if (m_get_hits_) m_get_hits_->inc();
      return it->second;
    }
  }
  return std::nullopt;
}

std::size_t KeyValueStore::erase(std::string_view key) {
  // Admin operation: scrub every shard, not just current owners, so erase
  // composes with membership changes that happened since the put.
  if (m_erases_) m_erases_->inc();
  std::size_t removed = 0;
  const std::string k(key);
  for (auto& [node, data] : shards_) {
    removed += data.erase(k);
  }
  // Parked hints for the key would resurrect it on drain — scrub them too.
  for (auto& [holder, queue] : hints_) {
    std::erase_if(queue, [&](const Hint& hint) { return hint.key == k; });
  }
  return removed;
}

bool KeyValueStore::contains(std::string_view key) const {
  return get(key).has_value();
}

std::size_t KeyValueStore::keys_on(NodeId node) const {
  auto it = shards_.find(node.value);
  return it == shards_.end() ? 0 : it->second.size();
}

std::size_t KeyValueStore::total_entries() const {
  std::size_t n = 0;
  for (const auto& [node, data] : shards_) n += data.size();
  return n;
}

void KeyValueStore::attach_metrics(obs::Registry& registry,
                                   std::string_view prefix) {
  const std::string p(prefix);
  m_puts_ = &registry.counter(p + ".puts");
  m_gets_ = &registry.counter(p + ".gets");
  m_get_hits_ = &registry.counter(p + ".get_hits");
  m_replica_writes_ = &registry.counter(p + ".replica_writes");
  m_erases_ = &registry.counter(p + ".erases");
  m_rebalances_ = &registry.counter(p + ".rebalances");
  m_hints_parked_ = &registry.counter(p + ".hints_parked");
  m_hints_drained_ = &registry.counter(p + ".hints_drained");
}

void KeyValueStore::export_metrics(obs::Registry& registry,
                                   std::string_view prefix) const {
  const std::string p(prefix);
  registry.gauge(p + ".total_entries")
      .set(static_cast<double>(total_entries()));
  registry.gauge(p + ".handoff_queue_depth")
      .set(static_cast<double>(handoff_queue_depth()));
  for (const NodeId node : ring_->members()) {
    registry.gauge(obs::labeled(p + ".keys", "node", node.value))
        .set(static_cast<double>(keys_on(node)));
  }
}

void KeyValueStore::rebalance() {
  if (m_rebalances_) m_rebalances_->inc();
  // Gather every (key, value) pair once, then re-place under current
  // ownership. Last-write-wins across stale replicas is fine because puts
  // overwrite all owners at once.
  std::unordered_map<std::string, std::string> all;
  for (auto& [node, data] : shards_) {
    for (auto& [k, v] : data) all.insert_or_assign(k, v);
  }
  shards_.clear();
  for (auto& [k, v] : all) {
    for (NodeId node : owners(k)) {
      shard(node).insert_or_assign(k, v);
    }
  }
}

}  // namespace move::kv
