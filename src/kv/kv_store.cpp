#include "kv/kv_store.hpp"

#include <algorithm>

#include "common/hash.hpp"
#include "kv/placement.hpp"
#include "obs/metrics.hpp"

namespace move::kv {

KeyValueStore::KeyValueStore(const HashRing& ring, std::size_t replicas,
                             LivenessFn alive)
    : ring_(&ring), replicas_(std::max<std::size_t>(1, replicas)),
      alive_(std::move(alive)) {}

std::unordered_map<std::string, std::string>& KeyValueStore::shard(
    NodeId node) {
  return shards_[node.value];
}

std::vector<NodeId> KeyValueStore::owners(std::string_view key) const {
  std::vector<NodeId> out;
  if (ring_->node_count() == 0) return out;
  const std::uint64_t h = common::fnv1a64(key);
  if (topology_) return replica_set(*ring_, *topology_, h, replicas_);
  out.push_back(ring_->home_of_hash(h));
  for (NodeId succ : ring_->successors(h, replicas_ - 1)) {
    out.push_back(succ);
  }
  return out;
}

std::size_t KeyValueStore::put(std::string_view key, std::string_view value) {
  if (m_puts_) m_puts_->inc();
  std::size_t written = 0;
  for (NodeId node : owners(key)) {
    if (!alive(node)) continue;
    shard(node).insert_or_assign(std::string(key), std::string(value));
    ++written;
  }
  if (m_replica_writes_) m_replica_writes_->add(written);
  return written;
}

std::optional<std::string> KeyValueStore::get(std::string_view key) const {
  if (m_gets_) m_gets_->inc();
  for (NodeId node : owners(key)) {
    if (!alive(node)) continue;
    auto shard_it = shards_.find(node.value);
    if (shard_it == shards_.end()) continue;
    auto it = shard_it->second.find(std::string(key));
    if (it != shard_it->second.end()) {
      if (m_get_hits_) m_get_hits_->inc();
      return it->second;
    }
  }
  return std::nullopt;
}

std::size_t KeyValueStore::erase(std::string_view key) {
  // Admin operation: scrub every shard, not just current owners, so erase
  // composes with membership changes that happened since the put.
  if (m_erases_) m_erases_->inc();
  std::size_t removed = 0;
  const std::string k(key);
  for (auto& [node, data] : shards_) {
    removed += data.erase(k);
  }
  return removed;
}

bool KeyValueStore::contains(std::string_view key) const {
  return get(key).has_value();
}

std::size_t KeyValueStore::keys_on(NodeId node) const {
  auto it = shards_.find(node.value);
  return it == shards_.end() ? 0 : it->second.size();
}

std::size_t KeyValueStore::total_entries() const {
  std::size_t n = 0;
  for (const auto& [node, data] : shards_) n += data.size();
  return n;
}

void KeyValueStore::attach_metrics(obs::Registry& registry,
                                   std::string_view prefix) {
  const std::string p(prefix);
  m_puts_ = &registry.counter(p + ".puts");
  m_gets_ = &registry.counter(p + ".gets");
  m_get_hits_ = &registry.counter(p + ".get_hits");
  m_replica_writes_ = &registry.counter(p + ".replica_writes");
  m_erases_ = &registry.counter(p + ".erases");
  m_rebalances_ = &registry.counter(p + ".rebalances");
}

void KeyValueStore::export_metrics(obs::Registry& registry,
                                   std::string_view prefix) const {
  const std::string p(prefix);
  registry.gauge(p + ".total_entries")
      .set(static_cast<double>(total_entries()));
  for (const NodeId node : ring_->members()) {
    registry.gauge(obs::labeled(p + ".keys", "node", node.value))
        .set(static_cast<double>(keys_on(node)));
  }
}

void KeyValueStore::rebalance() {
  if (m_rebalances_) m_rebalances_->inc();
  // Gather every (key, value) pair once, then re-place under current
  // ownership. Last-write-wins across stale replicas is fine because puts
  // overwrite all owners at once.
  std::unordered_map<std::string, std::string> all;
  for (auto& [node, data] : shards_) {
    for (auto& [k, v] : data) all.insert_or_assign(k, v);
  }
  shards_.clear();
  for (auto& [k, v] : all) {
    for (NodeId node : owners(k)) {
      shard(node).insert_or_assign(k, v);
    }
  }
}

}  // namespace move::kv
