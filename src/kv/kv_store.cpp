#include "kv/kv_store.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace move::kv {

KeyValueStore::KeyValueStore(const HashRing& ring, std::size_t replicas,
                             LivenessFn alive)
    : ring_(&ring), replicas_(std::max<std::size_t>(1, replicas)),
      alive_(std::move(alive)) {}

std::unordered_map<std::string, std::string>& KeyValueStore::shard(
    NodeId node) {
  return shards_[node.value];
}

std::vector<NodeId> KeyValueStore::owners(std::string_view key) const {
  std::vector<NodeId> out;
  if (ring_->node_count() == 0) return out;
  const std::uint64_t h = common::fnv1a64(key);
  out.push_back(ring_->home_of_hash(h));
  for (NodeId succ : ring_->successors(h, replicas_ - 1)) {
    out.push_back(succ);
  }
  return out;
}

std::size_t KeyValueStore::put(std::string_view key, std::string_view value) {
  std::size_t written = 0;
  for (NodeId node : owners(key)) {
    if (!alive(node)) continue;
    shard(node).insert_or_assign(std::string(key), std::string(value));
    ++written;
  }
  return written;
}

std::optional<std::string> KeyValueStore::get(std::string_view key) const {
  for (NodeId node : owners(key)) {
    if (!alive(node)) continue;
    auto shard_it = shards_.find(node.value);
    if (shard_it == shards_.end()) continue;
    auto it = shard_it->second.find(std::string(key));
    if (it != shard_it->second.end()) return it->second;
  }
  return std::nullopt;
}

std::size_t KeyValueStore::erase(std::string_view key) {
  // Admin operation: scrub every shard, not just current owners, so erase
  // composes with membership changes that happened since the put.
  std::size_t removed = 0;
  const std::string k(key);
  for (auto& [node, data] : shards_) {
    removed += data.erase(k);
  }
  return removed;
}

bool KeyValueStore::contains(std::string_view key) const {
  return get(key).has_value();
}

std::size_t KeyValueStore::keys_on(NodeId node) const {
  auto it = shards_.find(node.value);
  return it == shards_.end() ? 0 : it->second.size();
}

std::size_t KeyValueStore::total_entries() const {
  std::size_t n = 0;
  for (const auto& [node, data] : shards_) n += data.size();
  return n;
}

void KeyValueStore::rebalance() {
  // Gather every (key, value) pair once, then re-place under current
  // ownership. Last-write-wins across stale replicas is fine because puts
  // overwrite all owners at once.
  std::unordered_map<std::string, std::string> all;
  for (auto& [node, data] : shards_) {
    for (auto& [k, v] : data) all.insert_or_assign(k, v);
  }
  shards_.clear();
  for (auto& [k, v] : all) {
    for (NodeId node : owners(k)) {
      shard(node).insert_or_assign(k, v);
    }
  }
}

}  // namespace move::kv
