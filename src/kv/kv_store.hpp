#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "kv/ring.hpp"

/// Replicated in-memory key/value store over the consistent-hash ring — the
/// put/get substrate the paper's registration protocol is phrased in (§II
/// "Key/value platforms": "the put function is used to store the object, and
/// the get function to lookup an object associated with an input key").
///
/// Dynamo-style semantics, simplified to what MOVE needs:
///  * a key is owned by its home node plus `replicas - 1` ring successors;
///  * put writes every live owner (sloppy write, no hinted handoff);
///  * get reads the first live owner holding the key;
///  * node liveness is supplied by the caller (the Cluster), so failure
///    experiments compose naturally.
namespace move::kv {

class KeyValueStore {
 public:
  using LivenessFn = std::function<bool(NodeId)>;

  /// @param ring      membership/ownership oracle (must outlive the store)
  /// @param replicas  total copies per key (Cassandra-style default 3)
  /// @param alive     liveness predicate; nullptr means "everything is up"
  explicit KeyValueStore(const HashRing& ring, std::size_t replicas = 3,
                         LivenessFn alive = nullptr);

  /// Writes `value` under `key` on every live owner.
  /// @returns number of replicas written (0 if all owners are down).
  std::size_t put(std::string_view key, std::string_view value);

  /// Reads the value from the first live owner that has it.
  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;

  /// Removes the key from every owner (live or not — an admin operation).
  /// @returns number of replicas deleted.
  std::size_t erase(std::string_view key);

  /// True if any live owner holds the key.
  [[nodiscard]] bool contains(std::string_view key) const;

  /// The nodes that should own `key` (home first, then successors).
  [[nodiscard]] std::vector<NodeId> owners(std::string_view key) const;

  /// Keys stored on one node (for rebalancing tests and introspection).
  [[nodiscard]] std::size_t keys_on(NodeId node) const;
  [[nodiscard]] std::size_t total_entries() const;

  /// Re-replicates every key according to current ring ownership: keys
  /// whose owner set changed (after a join/leave) are copied to their new
  /// owners and dropped from nodes that no longer own them. This is the
  /// simulator's stand-in for Cassandra's range streaming.
  void rebalance();

  [[nodiscard]] std::size_t replicas() const noexcept { return replicas_; }

 private:
  [[nodiscard]] bool alive(NodeId node) const {
    return !alive_ || alive_(node);
  }
  std::unordered_map<std::string, std::string>& shard(NodeId node);

  const HashRing* ring_;
  std::size_t replicas_;
  LivenessFn alive_;
  // Sparse per-node shards, keyed by node id (nodes can join later).
  std::unordered_map<std::uint32_t,
                     std::unordered_map<std::string, std::string>>
      shards_;
};

}  // namespace move::kv
