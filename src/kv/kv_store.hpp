#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "kv/ring.hpp"
#include "kv/topology.hpp"
#include "sim/fault_accounting.hpp"

namespace move::obs {
class Counter;
class Registry;
}

/// Replicated in-memory key/value store over the consistent-hash ring — the
/// put/get substrate the paper's registration protocol is phrased in (§II
/// "Key/value platforms": "the put function is used to store the object, and
/// the get function to lookup an object associated with an input key").
///
/// Dynamo-style semantics, simplified to what MOVE needs:
///  * a key is owned by its home node plus `replicas - 1` ring successors;
///  * put writes every live owner; writes destined for a *dead* owner are
///    parked as hints on the first live ring successor outside the owner
///    set (Dynamo's hinted handoff) and delivered when the owner recovers;
///  * get reads the first live owner holding the key;
///  * node liveness is supplied by the caller (the Cluster), so failure
///    experiments compose naturally.
///
/// Hints live on their holder: if the holder dies before draining, its
/// parked hints are unavailable until the holder itself recovers — exactly
/// the sloppy-quorum durability story the chaos tests probe. A failure
/// detector that *observes* the holder's death can do better by calling
/// repark_hints(holder), which evacuates the hints to the next live
/// stand-in (the FaultInjector does this on every scripted failure).
namespace move::kv {

class KeyValueStore {
 public:
  using LivenessFn = std::function<bool(NodeId)>;

  /// @param ring      membership/ownership oracle (must outlive the store)
  /// @param replicas  total copies per key (Cassandra-style default 3)
  /// @param alive     liveness predicate; nullptr means "everything is up"
  explicit KeyValueStore(const HashRing& ring, std::size_t replicas = 3,
                         LivenessFn alive = nullptr);

  /// Switches ownership to the rack-diverse replica walk (placement.hpp
  /// replica_set): replicas land on distinct racks whenever the topology
  /// offers enough of them — Cassandra's NetworkTopologyStrategy. The
  /// topology must outlive the store; call rebalance() afterwards if data
  /// was already stored under ring-successor ownership.
  void use_rack_aware_placement(const RackTopology& topology) {
    topology_ = &topology;
  }
  [[nodiscard]] bool rack_aware() const noexcept {
    return topology_ != nullptr;
  }

  /// Writes `value` under `key` on every live owner; for each dead owner a
  /// hint is parked on the first live non-owner successor (if any).
  /// @returns number of owner replicas written directly (hints excluded; 0
  /// if all owners are down).
  std::size_t put(std::string_view key, std::string_view value);

  /// Reads the value from the first live owner that has it.
  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;

  /// Removes the key from every owner (live or not — an admin operation).
  /// @returns number of replicas deleted.
  std::size_t erase(std::string_view key);

  /// True if any live owner holds the key.
  [[nodiscard]] bool contains(std::string_view key) const;

  /// The nodes that should own `key` (home first, then successors).
  [[nodiscard]] std::vector<NodeId> owners(std::string_view key) const;

  /// Keys stored on one node (for rebalancing tests and introspection).
  [[nodiscard]] std::size_t keys_on(NodeId node) const;
  [[nodiscard]] std::size_t total_entries() const;

  /// Re-replicates every key according to current ring ownership: keys
  /// whose owner set changed (after a join/leave) are copied to their new
  /// owners and dropped from nodes that no longer own them. This is the
  /// simulator's stand-in for Cassandra's range streaming.
  void rebalance();

  // --- hinted handoff -------------------------------------------------------

  /// Drains hints involving a node that just recovered: hints *targeted at*
  /// it (held by live holders) are delivered to its shard, and hints *held
  /// by* it are delivered to their live targets (undeliverable ones stay
  /// parked). Call on every node recovery.
  /// @returns number of hinted writes delivered.
  std::size_t drain_hints(NodeId recovered);

  /// Evacuates hints off a holder that just died: each hint it was parking
  /// is delivered directly when its target is meanwhile alive, and
  /// re-parked on the next live non-owner successor otherwise — so hints
  /// survive the death of their holder instead of being stranded until the
  /// holder recovers. Call *after* the holder's liveness flips to dead (the
  /// FaultInjector does); a hint with no live stand-in left is dropped,
  /// which is the same sloppy-quorum loss as the original park.
  /// @returns number of hints moved (delivered + re-parked).
  std::size_t repark_hints(NodeId failed_holder);

  /// Total hinted writes currently parked (cluster-wide queue depth).
  [[nodiscard]] std::size_t handoff_queue_depth() const;
  /// Hinted writes parked on one holder node.
  [[nodiscard]] std::size_t hints_on(NodeId holder) const;

  [[nodiscard]] std::size_t replicas() const noexcept { return replicas_; }

  /// Attaches live op counters (`<prefix>.puts`, `.gets`, `.get_hits`,
  /// `.replica_writes`, `.erases`, `.rebalances`) to `registry` (which must
  /// outlive the store) and snapshots per-node key counts on demand via
  /// export_metrics().
  void attach_metrics(obs::Registry& registry,
                      std::string_view prefix = "kv.store");

  /// Writes per-node key-count gauges (`<prefix>.keys{node=i}`) and the
  /// total-entries gauge into `registry` (snapshot semantics).
  void export_metrics(obs::Registry& registry,
                      std::string_view prefix = "kv.store") const;

  /// Optional failure-accounting sink (e.g. the Cluster's): park/drain
  /// volumes are added to it alongside the registry counters.
  void attach_fault_accounting(sim::FaultAccounting* acc) noexcept {
    fault_acc_ = acc;
  }

 private:
  /// One write parked for a dead owner, stored FIFO on its holder.
  struct Hint {
    std::uint32_t target;  ///< the dead owner this write is destined for
    std::string key;
    std::string value;
  };

  [[nodiscard]] bool alive(NodeId node) const {
    return !alive_ || alive_(node);
  }
  std::unordered_map<std::string, std::string>& shard(NodeId node);
  /// @returns true if the write was parked (or refreshed an existing hint);
  /// false if no live stand-in existed and the write was sloppy-lost.
  bool park_hint(std::uint64_t key_hash, NodeId target, std::string_view key,
                 std::string_view value);

  const HashRing* ring_;
  std::size_t replicas_;
  LivenessFn alive_;
  const RackTopology* topology_ = nullptr;
  obs::Counter* m_puts_ = nullptr;
  obs::Counter* m_gets_ = nullptr;
  obs::Counter* m_get_hits_ = nullptr;
  obs::Counter* m_replica_writes_ = nullptr;
  obs::Counter* m_erases_ = nullptr;
  obs::Counter* m_rebalances_ = nullptr;
  obs::Counter* m_hints_parked_ = nullptr;
  obs::Counter* m_hints_drained_ = nullptr;
  sim::FaultAccounting* fault_acc_ = nullptr;
  // Sparse per-node shards, keyed by node id (nodes can join later).
  std::unordered_map<std::uint32_t,
                     std::unordered_map<std::string, std::string>>
      shards_;
  // Parked hints keyed by holder node, FIFO per holder (delivery applies in
  // park order, so last write wins as it would on the owner).
  std::unordered_map<std::uint32_t, std::vector<Hint>> hints_;
};

}  // namespace move::kv
