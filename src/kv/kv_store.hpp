#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "kv/ring.hpp"
#include "kv/topology.hpp"

namespace move::obs {
class Counter;
class Registry;
}

/// Replicated in-memory key/value store over the consistent-hash ring — the
/// put/get substrate the paper's registration protocol is phrased in (§II
/// "Key/value platforms": "the put function is used to store the object, and
/// the get function to lookup an object associated with an input key").
///
/// Dynamo-style semantics, simplified to what MOVE needs:
///  * a key is owned by its home node plus `replicas - 1` ring successors;
///  * put writes every live owner (sloppy write, no hinted handoff);
///  * get reads the first live owner holding the key;
///  * node liveness is supplied by the caller (the Cluster), so failure
///    experiments compose naturally.
namespace move::kv {

class KeyValueStore {
 public:
  using LivenessFn = std::function<bool(NodeId)>;

  /// @param ring      membership/ownership oracle (must outlive the store)
  /// @param replicas  total copies per key (Cassandra-style default 3)
  /// @param alive     liveness predicate; nullptr means "everything is up"
  explicit KeyValueStore(const HashRing& ring, std::size_t replicas = 3,
                         LivenessFn alive = nullptr);

  /// Switches ownership to the rack-diverse replica walk (placement.hpp
  /// replica_set): replicas land on distinct racks whenever the topology
  /// offers enough of them — Cassandra's NetworkTopologyStrategy. The
  /// topology must outlive the store; call rebalance() afterwards if data
  /// was already stored under ring-successor ownership.
  void use_rack_aware_placement(const RackTopology& topology) {
    topology_ = &topology;
  }
  [[nodiscard]] bool rack_aware() const noexcept {
    return topology_ != nullptr;
  }

  /// Writes `value` under `key` on every live owner.
  /// @returns number of replicas written (0 if all owners are down).
  std::size_t put(std::string_view key, std::string_view value);

  /// Reads the value from the first live owner that has it.
  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;

  /// Removes the key from every owner (live or not — an admin operation).
  /// @returns number of replicas deleted.
  std::size_t erase(std::string_view key);

  /// True if any live owner holds the key.
  [[nodiscard]] bool contains(std::string_view key) const;

  /// The nodes that should own `key` (home first, then successors).
  [[nodiscard]] std::vector<NodeId> owners(std::string_view key) const;

  /// Keys stored on one node (for rebalancing tests and introspection).
  [[nodiscard]] std::size_t keys_on(NodeId node) const;
  [[nodiscard]] std::size_t total_entries() const;

  /// Re-replicates every key according to current ring ownership: keys
  /// whose owner set changed (after a join/leave) are copied to their new
  /// owners and dropped from nodes that no longer own them. This is the
  /// simulator's stand-in for Cassandra's range streaming.
  void rebalance();

  [[nodiscard]] std::size_t replicas() const noexcept { return replicas_; }

  /// Attaches live op counters (`<prefix>.puts`, `.gets`, `.get_hits`,
  /// `.replica_writes`, `.erases`, `.rebalances`) to `registry` (which must
  /// outlive the store) and snapshots per-node key counts on demand via
  /// export_metrics().
  void attach_metrics(obs::Registry& registry,
                      std::string_view prefix = "kv.store");

  /// Writes per-node key-count gauges (`<prefix>.keys{node=i}`) and the
  /// total-entries gauge into `registry` (snapshot semantics).
  void export_metrics(obs::Registry& registry,
                      std::string_view prefix = "kv.store") const;

 private:
  [[nodiscard]] bool alive(NodeId node) const {
    return !alive_ || alive_(node);
  }
  std::unordered_map<std::string, std::string>& shard(NodeId node);

  const HashRing* ring_;
  std::size_t replicas_;
  LivenessFn alive_;
  const RackTopology* topology_ = nullptr;
  obs::Counter* m_puts_ = nullptr;
  obs::Counter* m_gets_ = nullptr;
  obs::Counter* m_get_hits_ = nullptr;
  obs::Counter* m_replica_writes_ = nullptr;
  obs::Counter* m_erases_ = nullptr;
  obs::Counter* m_rebalances_ = nullptr;
  // Sparse per-node shards, keyed by node id (nodes can join later).
  std::unordered_map<std::uint32_t,
                     std::unordered_map<std::string, std::string>>
      shards_;
};

}  // namespace move::kv
