#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace move::obs {
class Registry;
}

/// Gossip-based membership (§II: "With the help of Gossip protocol, every
/// node in Dynamo maintains information about all other nodes") — the
/// mechanism that justifies MOVE's O(1)-hop routing assumption.
///
/// Round-based anti-entropy simulation: each round every live node picks
/// `fanout` random peers it knows and exchanges heartbeat tables
/// (push-pull). A node's entry carries a monotonically increasing heartbeat
/// version; a peer whose heartbeat has not advanced for
/// `suspicion_rounds` rounds is locally marked dead. The simulation answers
/// the questions the paper waves at: how many rounds until a join is known
/// everywhere, and how quickly failures are detected.
namespace move::kv {

struct GossipConfig {
  std::size_t fanout = 2;            ///< peers contacted per round per node
  std::uint32_t suspicion_rounds = 6;  ///< silence before marking dead
  std::uint64_t seed = 0x90551bULL;
};

class GossipMembership {
 public:
  explicit GossipMembership(GossipConfig config = {});

  /// Adds a live node; it initially knows only itself (and learns the rest
  /// through gossip) unless seeded via introduce().
  void add_node(NodeId node);

  /// Makes `node` aware of `peer` (a join contact / seed node).
  void introduce(NodeId node, NodeId peer);

  /// Marks a node as crashed: it stops gossiping and its heartbeat freezes.
  void crash(NodeId node);
  /// Restarts a crashed node with a fresh heartbeat epoch.
  void restart(NodeId node);

  /// Executes one gossip round (every live node push-pulls with `fanout`
  /// random known-live peers), then advances suspicion clocks.
  void run_round();
  void run_rounds(std::size_t n);

  [[nodiscard]] std::size_t rounds_elapsed() const noexcept {
    return rounds_;
  }

  /// Number of members `node` currently believes are alive (itself
  /// included).
  [[nodiscard]] std::size_t live_view_size(NodeId node) const;

  /// Whether `observer` currently believes `subject` is alive.
  [[nodiscard]] bool believes_alive(NodeId observer, NodeId subject) const;

  /// True when every live node's live-view equals the true live set — the
  /// converged state the paper's routing relies on.
  [[nodiscard]] bool converged() const;

  /// Rounds of run_round() needed from the current state until converged(),
  /// capped at `max_rounds` (returns max_rounds if not reached).
  std::size_t rounds_to_convergence(std::size_t max_rounds);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return states_.size();
  }
  [[nodiscard]] std::size_t true_live_count() const;

  // --- observability --------------------------------------------------------

  /// Push-pull exchanges performed since construction.
  [[nodiscard]] std::uint64_t exchanges() const noexcept { return exchanges_; }
  /// suspected_dead transitions observed (stale-entry expirations).
  [[nodiscard]] std::uint64_t suspicions() const noexcept {
    return suspicions_;
  }
  /// Suspicions of a node that was actually live at transition time — the
  /// failure detector's false positives. A healthy, churn-free membership
  /// must never increment this (gossip_test asserts exactly that).
  [[nodiscard]] std::uint64_t false_suspicions() const noexcept {
    return false_suspicions_;
  }

  /// Writes `<prefix>.rounds` / `.exchanges` / `.suspicions` /
  /// `.false_suspicions` / `.live_nodes` gauges into `registry`
  /// (snapshot semantics).
  void export_metrics(obs::Registry& registry,
                      std::string_view prefix = "kv.gossip") const;

 private:
  struct PeerInfo {
    std::uint64_t heartbeat = 0;  ///< highest heartbeat seen
    std::uint32_t silent_rounds = 0;
    bool suspected_dead = false;
  };
  struct NodeState {
    bool crashed = false;
    std::uint64_t heartbeat = 0;
    std::unordered_map<std::uint32_t, PeerInfo> view;  // keyed by NodeId
  };

  void exchange(NodeState& a, NodeState& b);
  [[nodiscard]] std::vector<std::uint32_t> live_peers_of(
      const NodeState& s, std::uint32_t self) const;

  GossipConfig config_;
  common::SplitMix64 rng_;
  std::size_t rounds_ = 0;
  // Plain integers: the gossip simulation is single-threaded by design.
  std::uint64_t exchanges_ = 0;
  std::uint64_t suspicions_ = 0;
  std::uint64_t false_suspicions_ = 0;
  std::unordered_map<std::uint32_t, NodeState> states_;
};

}  // namespace move::kv
