#include "kv/gossip.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace move::kv {

GossipMembership::GossipMembership(GossipConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.fanout == 0) {
    throw std::invalid_argument("GossipMembership: fanout must be >= 1");
  }
}

void GossipMembership::add_node(NodeId node) {
  auto& state = states_[node.value];
  state.crashed = false;
  state.heartbeat = 1;
  state.view[node.value] = PeerInfo{state.heartbeat, 0, false};
}

void GossipMembership::introduce(NodeId node, NodeId peer) {
  auto it = states_.find(node.value);
  auto pit = states_.find(peer.value);
  if (it == states_.end() || pit == states_.end()) {
    throw std::out_of_range("GossipMembership::introduce: unknown node");
  }
  it->second.view[peer.value] = PeerInfo{pit->second.heartbeat, 0, false};
}

void GossipMembership::crash(NodeId node) {
  auto it = states_.find(node.value);
  if (it == states_.end()) {
    throw std::out_of_range("GossipMembership::crash: unknown node");
  }
  it->second.crashed = true;
}

void GossipMembership::restart(NodeId node) {
  auto it = states_.find(node.value);
  if (it == states_.end()) {
    throw std::out_of_range("GossipMembership::restart: unknown node");
  }
  it->second.crashed = false;
  it->second.heartbeat += 1;
  it->second.view[node.value] = PeerInfo{it->second.heartbeat, 0, false};
}

std::vector<std::uint32_t> GossipMembership::live_peers_of(
    const NodeState& s, std::uint32_t self) const {
  std::vector<std::uint32_t> peers;
  for (const auto& [id, info] : s.view) {
    if (id != self && !info.suspected_dead) peers.push_back(id);
  }
  std::sort(peers.begin(), peers.end());  // deterministic iteration order
  return peers;
}

void GossipMembership::exchange(NodeState& a, NodeState& b) {
  // Push-pull: both sides end with the element-wise freshest view. A
  // freshly advanced heartbeat clears suspicion and the silence clock.
  auto merge_into = [](NodeState& dst, const NodeState& src) {
    for (const auto& [id, info] : src.view) {
      auto& mine = dst.view[id];
      if (info.heartbeat > mine.heartbeat) {
        mine.heartbeat = info.heartbeat;
        mine.silent_rounds = 0;
        mine.suspected_dead = false;
      }
    }
  };
  merge_into(a, b);
  merge_into(b, a);
}

void GossipMembership::run_round() {
  ++rounds_;
  // 1. Every live node bumps its own heartbeat.
  for (auto& [id, state] : states_) {
    if (state.crashed) continue;
    ++state.heartbeat;
    auto& self = state.view[id];
    self.heartbeat = state.heartbeat;
    self.silent_rounds = 0;
    self.suspected_dead = false;
  }
  // 2. Each live node push-pulls with `fanout` random live-believed peers.
  //    Iterate ids in sorted order for determinism.
  std::vector<std::uint32_t> ids;
  ids.reserve(states_.size());
  for (const auto& [id, state] : states_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (std::uint32_t id : ids) {
    NodeState& me = states_[id];
    if (me.crashed) continue;
    auto peers = live_peers_of(me, id);
    for (std::size_t k = 0; k < config_.fanout && !peers.empty(); ++k) {
      const auto pick = common::uniform_below(rng_, peers.size());
      const std::uint32_t peer = peers[pick];
      peers.erase(peers.begin() + static_cast<std::ptrdiff_t>(pick));
      NodeState& other = states_[peer];
      if (other.crashed) continue;  // message to a dead node is lost
      ++exchanges_;
      exchange(me, other);
    }
  }
  // 3. Advance suspicion clocks: entries whose heartbeat did not move this
  //    round age toward suspicion.
  for (auto& [id, state] : states_) {
    if (state.crashed) continue;
    for (auto& [peer, info] : state.view) {
      if (peer == id) continue;
      ++info.silent_rounds;
      if (info.silent_rounds > config_.suspicion_rounds &&
          !info.suspected_dead) {
        info.suspected_dead = true;
        ++suspicions_;
        // A suspicion of a node that is actually alive right now is a
        // failure-detector false positive (possible only when heartbeat
        // propagation stalls longer than the suspicion window).
        const auto subject = states_.find(peer);
        if (subject != states_.end() && !subject->second.crashed) {
          ++false_suspicions_;
        }
      }
    }
  }
}

void GossipMembership::run_rounds(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) run_round();
}

std::size_t GossipMembership::live_view_size(NodeId node) const {
  auto it = states_.find(node.value);
  if (it == states_.end()) {
    throw std::out_of_range("GossipMembership::live_view_size: unknown node");
  }
  std::size_t n = 0;
  for (const auto& [id, info] : it->second.view) {
    n += !info.suspected_dead;
  }
  return n;
}

bool GossipMembership::believes_alive(NodeId observer, NodeId subject) const {
  auto it = states_.find(observer.value);
  if (it == states_.end()) {
    throw std::out_of_range("GossipMembership::believes_alive: unknown node");
  }
  auto pit = it->second.view.find(subject.value);
  return pit != it->second.view.end() && !pit->second.suspected_dead;
}

std::size_t GossipMembership::true_live_count() const {
  std::size_t n = 0;
  for (const auto& [id, state] : states_) n += !state.crashed;
  return n;
}

bool GossipMembership::converged() const {
  for (const auto& [id, state] : states_) {
    if (state.crashed) continue;
    // Every truly-live node must be believed alive, every crashed one dead.
    for (const auto& [other, other_state] : states_) {
      auto it = state.view.find(other);
      const bool believed =
          it != state.view.end() && !it->second.suspected_dead;
      if (other_state.crashed == believed) return false;
    }
  }
  return true;
}

void GossipMembership::export_metrics(obs::Registry& registry,
                                      std::string_view prefix) const {
  const std::string p(prefix);
  registry.gauge(p + ".rounds").set(static_cast<double>(rounds_));
  registry.gauge(p + ".exchanges").set(static_cast<double>(exchanges_));
  registry.gauge(p + ".suspicions").set(static_cast<double>(suspicions_));
  registry.gauge(p + ".false_suspicions")
      .set(static_cast<double>(false_suspicions_));
  registry.gauge(p + ".live_nodes")
      .set(static_cast<double>(true_live_count()));
}

std::size_t GossipMembership::rounds_to_convergence(std::size_t max_rounds) {
  for (std::size_t r = 0; r < max_rounds; ++r) {
    if (converged()) return r;
    run_round();
  }
  return max_rounds;
}

}  // namespace move::kv
