#include "kv/placement.hpp"

#include <algorithm>
#include <set>

namespace move::kv {

namespace {

/// Appends members of `pool` to `out` (skipping duplicates and `home`) until
/// `out` reaches `count`.
void take_from(std::vector<NodeId>& out, const std::vector<NodeId>& pool,
               NodeId home, std::size_t count) {
  for (NodeId node : pool) {
    if (out.size() >= count) return;
    if (node == home) continue;
    if (std::find(out.begin(), out.end(), node) == out.end()) {
      out.push_back(node);
    }
  }
}

}  // namespace

std::vector<NodeId> select_replica_nodes(PlacementPolicy policy, NodeId home,
                                         std::uint64_t key_hash,
                                         std::size_t count,
                                         const HashRing& ring,
                                         const RackTopology& topology,
                                         common::SplitMix64& rng) {
  std::vector<NodeId> out;
  if (ring.node_count() <= 1 || count == 0) return out;
  count = std::min(count, ring.node_count() - 1);
  out.reserve(count);

  switch (policy) {
    case PlacementPolicy::kRingSuccessors:
      take_from(out, ring.successors(key_hash, count), home, count);
      break;
    case PlacementPolicy::kRackAware:
      take_from(out, topology.rack_peers(home), home, count);
      break;
    case PlacementPolicy::kHybrid: {
      // §V: "we choose one half of the n_i nodes based on the successors,
      // and another half based on the rack-aware nodes."
      const std::size_t half = (count + 1) / 2;
      take_from(out, topology.rack_peers(home), home, half);
      take_from(out, ring.successors(key_hash, count), home, count);
      break;
    }
  }

  if (out.size() < count) {
    // Top up from full membership, starting at a random offset so overflow
    // load spreads instead of always hitting the lowest node ids.
    const std::vector<NodeId> all = ring.members();
    if (!all.empty()) {
      const std::size_t start = common::uniform_below(rng, all.size());
      std::vector<NodeId> rotated;
      rotated.reserve(all.size());
      for (std::size_t i = 0; i < all.size(); ++i) {
        rotated.push_back(all[(start + i) % all.size()]);
      }
      take_from(out, rotated, home, count);
    }
  }
  return out;
}

std::vector<NodeId> select_replica_nodes_weighted(
    PlacementPolicy policy, NodeId home, std::uint64_t key_hash,
    std::size_t count, const HashRing& ring, const RackTopology& topology,
    std::span<const double> slot_load) {
  std::vector<NodeId> out;
  if (ring.node_count() <= 1 || count == 0) return out;
  count = std::min(count, ring.node_count() - 1);
  out.reserve(count);

  auto by_load = [&](std::vector<NodeId> pool) {
    // Stable sort keeps the policy's own order as the tie-break.
    std::stable_sort(pool.begin(), pool.end(), [&](NodeId a, NodeId b) {
      const double la = a.value < slot_load.size() ? slot_load[a.value] : 0.0;
      const double lb = b.value < slot_load.size() ? slot_load[b.value] : 0.0;
      return la < lb;
    });
    return pool;
  };

  switch (policy) {
    case PlacementPolicy::kRingSuccessors:
      // Keep the pure successor walk verbatim: its placement (and its
      // availability behaviour) is the point of the Fig. 9 comparison.
      take_from(out, ring.successors(key_hash, count), home, count);
      break;
    case PlacementPolicy::kRackAware:
      take_from(out, by_load(topology.rack_peers(home)), home, count);
      break;
    case PlacementPolicy::kHybrid: {
      // Half from the rack, half from the ring; both pools are offered in
      // full so the load-aware ordering has freedom to avoid hot nodes.
      const std::size_t half = (count + 1) / 2;
      take_from(out, by_load(topology.rack_peers(home)), home, half);
      take_from(out, by_load(ring.successors(key_hash, ring.node_count())),
                home, count);
      break;
    }
  }

  if (out.size() < count) {
    take_from(out, by_load(ring.members()), home, count);
  }
  return out;
}

std::vector<NodeId> replica_set(const HashRing& ring,
                                const RackTopology& topology,
                                std::uint64_t key_hash,
                                std::size_t replicas) {
  std::vector<NodeId> out;
  if (replicas == 0 || ring.node_count() == 0) return out;
  const std::size_t want = std::min(replicas, ring.node_count());

  // Nodes beyond the topology's knowledge each get a private pseudo-rack so
  // they can always be chosen without defeating diversity accounting.
  const auto rack_key = [&](NodeId n) -> long long {
    if (n.value < topology.node_count()) {
      return static_cast<long long>(topology.rack_of(n));
    }
    return -1 - static_cast<long long>(n.value);
  };

  const NodeId home = ring.home_of_hash(key_hash);
  out.reserve(want);
  out.push_back(home);
  std::set<long long> racks_used{rack_key(home)};

  // Full clockwise walk order of every other member.
  const std::vector<NodeId> walk =
      ring.successors(key_hash, ring.node_count());
  std::vector<NodeId> skipped;
  for (const NodeId n : walk) {
    if (out.size() >= want) break;
    if (racks_used.insert(rack_key(n)).second) {
      out.push_back(n);
    } else {
      skipped.push_back(n);
    }
  }
  for (const NodeId n : skipped) {
    if (out.size() >= want) break;
    out.push_back(n);
  }
  return out;
}

}  // namespace move::kv
