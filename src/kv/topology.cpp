#include "kv/topology.hpp"

#include <stdexcept>

namespace move::kv {

RackTopology::RackTopology(std::size_t node_count, std::size_t rack_count)
    : rack_count_(rack_count) {
  if (rack_count == 0) {
    throw std::invalid_argument("RackTopology: rack_count must be >= 1");
  }
  rack_of_.resize(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    rack_of_[i] = static_cast<std::uint32_t>(i % rack_count);
  }
}

std::size_t RackTopology::rack_of(NodeId node) const {
  if (node.value >= rack_of_.size()) {
    throw std::out_of_range("RackTopology::rack_of: unknown node");
  }
  return rack_of_[node.value];
}

std::vector<NodeId> RackTopology::nodes_in_rack(std::size_t rack) const {
  std::vector<NodeId> out;
  for (std::uint32_t i = 0; i < rack_of_.size(); ++i) {
    if (rack_of_[i] == rack) out.push_back(NodeId{i});
  }
  return out;
}

std::vector<NodeId> RackTopology::rack_peers(NodeId node) const {
  std::vector<NodeId> out = nodes_in_rack(rack_of(node));
  std::erase(out, node);
  return out;
}

std::size_t RackTopology::add_node() {
  const auto rack = static_cast<std::uint32_t>(rack_of_.size() % rack_count_);
  rack_of_.push_back(rack);
  return rack;
}

}  // namespace move::kv
