#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

/// Low-overhead metrics primitives shared by every MOVE layer.
///
/// The paper's evaluation is entirely quantitative — throughput, per-node
/// load balance, availability under failure (Fig. 6-9) — so the repro needs
/// per-component counters that survive into machine-readable bench output.
/// Three primitives cover everything the layers report:
///
///  * Counter   — monotonic 64-bit event count (puts, postings scanned, ...)
///  * Gauge     — last-written double (queue depth, busy fraction, ...)
///  * Histogram — fixed-bucket distribution (latency, fan-out, sizes)
///
/// All mutation uses relaxed atomics, so the same primitives are safe on the
/// real-thread paths (ParallelMatcher's pool) and nearly free on the
/// single-threaded simulated paths: a relaxed fetch_add on an uncontended
/// cache line is one locked add. Registration (name lookup) takes a mutex and
/// is meant to happen once, at attach time — hot paths hold the returned
/// reference, never the name.
namespace move::obs {

/// Monotonically increasing event counter.
class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value metric (settable, also supports additive adjustment).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }

  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations v <= bounds[i]
/// (first matching bound); one implicit overflow bucket counts the rest.
/// Bounds are fixed at construction so observe() is a binary search plus one
/// relaxed increment — no allocation, no locking.
class Histogram {
 public:
  /// @param upper_bounds ascending inclusive upper bounds; must be non-empty
  ///                     and strictly increasing (throws otherwise).
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const auto n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  [[nodiscard]] std::span<const double> bounds() const noexcept {
    return bounds_;
  }
  /// Number of buckets including the overflow bucket (bounds().size() + 1).
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_.at(i).load(std::memory_order_relaxed);
  }

  /// Approximate q-quantile (q in [0,1]) assuming uniform mass within a
  /// bucket; overflow-bucket quantiles clamp to the last bound. 0 if empty.
  [[nodiscard]] double quantile(double q) const;

  void reset() noexcept;

  /// `count` bounds starting at `first`, each `factor` times the previous.
  [[nodiscard]] static std::vector<double> exponential_bounds(
      double first, double factor, std::size_t count);
  /// `count` bounds starting at `first`, spaced `width` apart.
  [[nodiscard]] static std::vector<double> linear_bounds(double first,
                                                         double width,
                                                         std::size_t count);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named metric registry. Components register metrics once (attach time),
/// cache the returned reference, and mutate lock-free thereafter. Names are
/// dot-separated paths with `{key=value}` label suffixes, e.g.
/// `cluster.node.busy_us{node=3}` — see DESIGN.md "Metrics naming".
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the counter registered under `name`, creating it on first use.
  /// The reference stays valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` is consumed only on first registration; later calls with
  /// the same name return the existing histogram unchanged.
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t size() const;

  /// Zeroes every registered metric (names stay registered).
  void reset();

  // --- snapshot access (sorted by name, for deterministic export) ----------

  struct CounterSample {
    std::string name;
    std::uint64_t value;
  };
  struct GaugeSample {
    std::string name;
    double value;
  };
  struct HistogramSample {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 (overflow last)
    std::uint64_t count;
    double sum;
  };

  [[nodiscard]] std::vector<CounterSample> counters() const;
  [[nodiscard]] std::vector<GaugeSample> gauges() const;
  [[nodiscard]] std::vector<HistogramSample> histograms() const;

 private:
  mutable std::mutex mu_;
  // std::map: stable iteration order -> deterministic export; unique_ptr:
  // references handed out survive rehash/rebalance.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Builds a `name{key=value}` metric name (the conventional label form).
[[nodiscard]] std::string labeled(std::string_view name, std::string_view key,
                                  std::uint64_t value);
[[nodiscard]] std::string labeled(std::string_view name, std::string_view key,
                                  std::string_view value);

}  // namespace move::obs
