#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace move::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: need at least one bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "Histogram: bounds must be strictly increasing");
  }
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(cum + c) >= target && c > 0) {
      if (i >= bounds_.size()) return bounds_.back();  // overflow bucket
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double within =
          (target - static_cast<double>(cum)) / static_cast<double>(c);
      return lo + std::clamp(within, 0.0, 1.0) * (hi - lo);
    }
    cum += c;
  }
  return bounds_.back();
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_bounds(double first, double factor,
                                                  std::size_t count) {
  if (count == 0 || first <= 0.0 || factor <= 1.0) {
    throw std::invalid_argument(
        "Histogram::exponential_bounds: need count >= 1, first > 0, "
        "factor > 1");
  }
  std::vector<double> out;
  out.reserve(count);
  double b = first;
  for (std::size_t i = 0; i < count; ++i, b *= factor) out.push_back(b);
  return out;
}

std::vector<double> Histogram::linear_bounds(double first, double width,
                                             std::size_t count) {
  if (count == 0 || width <= 0.0) {
    throw std::invalid_argument(
        "Histogram::linear_bounds: need count >= 1, width > 0");
  }
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(first + width * static_cast<double>(i));
  }
  return out;
}

Counter& Registry::counter(std::string_view name) {
  const std::scoped_lock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::scoped_lock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> upper_bounds) {
  const std::scoped_lock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  }
  return *it->second;
}

bool Registry::empty() const { return size() == 0; }

std::size_t Registry::size() const {
  const std::scoped_lock lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void Registry::reset() {
  const std::scoped_lock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::vector<Registry::CounterSample> Registry::counters() const {
  const std::scoped_lock lock(mu_);
  std::vector<CounterSample> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.push_back(CounterSample{name, c->value()});
  }
  return out;
}

std::vector<Registry::GaugeSample> Registry::gauges() const {
  const std::scoped_lock lock(mu_);
  std::vector<GaugeSample> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.push_back(GaugeSample{name, g->value()});
  }
  return out;
}

std::vector<Registry::HistogramSample> Registry::histograms() const {
  const std::scoped_lock lock(mu_);
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.bounds.assign(h->bounds().begin(), h->bounds().end());
    s.counts.reserve(h->bucket_count());
    for (std::size_t i = 0; i < h->bucket_count(); ++i) {
      s.counts.push_back(h->bucket(i));
    }
    s.count = h->count();
    s.sum = h->sum();
    out.push_back(std::move(s));
  }
  return out;
}

std::string labeled(std::string_view name, std::string_view key,
                    std::uint64_t value) {
  return labeled(name, key, std::string_view(std::to_string(value)));
}

std::string labeled(std::string_view name, std::string_view key,
                    std::string_view value) {
  std::string out(name);
  out += '{';
  out += key;
  out += '=';
  out += value;
  out += '}';
  return out;
}

}  // namespace move::obs
