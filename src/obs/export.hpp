#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

/// Registry -> JSON export (the schema the obs tests round-trip and the
/// bench reporter embeds under its "registry" key; documented in DESIGN.md).
///
/// Layout:
/// ```json
/// {
///   "counters":   {"kv.store.puts": 128},
///   "gauges":     {"cluster.node.busy_us{node=3}": 4031.5},
///   "histograms": {"sim.latency_us": {"bounds": [...], "counts": [...],
///                                     "count": 42, "sum": 1234.5}}
/// }
/// ```
/// Histogram `counts` has one more entry than `bounds` (overflow last). An
/// empty registry exports the three empty objects — still valid JSON.
namespace move::obs {

/// Snapshot of the registry as a Json value.
[[nodiscard]] Json registry_to_json(const Registry& registry);

/// `registry_to_json(...).dump(indent)`.
[[nodiscard]] std::string export_json(const Registry& registry,
                                      int indent = -1);

/// Loads a parsed export back into sample vectors — the inverse of
/// registry_to_json for value comparison (used by round-trip tests and
/// future bench-diff tooling). Throws std::runtime_error on schema mismatch.
struct RegistrySnapshot {
  std::vector<Registry::CounterSample> counters;
  std::vector<Registry::GaugeSample> gauges;
  std::vector<Registry::HistogramSample> histograms;
};
[[nodiscard]] RegistrySnapshot snapshot_from_json(const Json& exported);

}  // namespace move::obs
