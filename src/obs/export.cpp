#include "obs/export.hpp"

namespace move::obs {

Json registry_to_json(const Registry& registry) {
  Json counters = Json::object();
  for (const auto& s : registry.counters()) {
    counters[s.name] = Json(s.value);
  }
  Json gauges = Json::object();
  for (const auto& s : registry.gauges()) {
    gauges[s.name] = Json(s.value);
  }
  Json histograms = Json::object();
  for (const auto& s : registry.histograms()) {
    Json h = Json::object();
    Json bounds = Json::array();
    for (const double b : s.bounds) bounds.push_back(Json(b));
    Json counts = Json::array();
    for (const std::uint64_t c : s.counts) counts.push_back(Json(c));
    h["bounds"] = std::move(bounds);
    h["counts"] = std::move(counts);
    h["count"] = Json(s.count);
    h["sum"] = Json(s.sum);
    histograms[s.name] = std::move(h);
  }
  Json out = Json::object();
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["histograms"] = std::move(histograms);
  return out;
}

std::string export_json(const Registry& registry, int indent) {
  return registry_to_json(registry).dump(indent);
}

RegistrySnapshot snapshot_from_json(const Json& exported) {
  RegistrySnapshot out;
  for (const auto& [name, v] : exported.at("counters").as_object()) {
    out.counters.push_back(Registry::CounterSample{
        name, static_cast<std::uint64_t>(v.as_double())});
  }
  for (const auto& [name, v] : exported.at("gauges").as_object()) {
    out.gauges.push_back(Registry::GaugeSample{name, v.as_double()});
  }
  for (const auto& [name, v] : exported.at("histograms").as_object()) {
    Registry::HistogramSample s;
    s.name = name;
    for (const Json& b : v.at("bounds").as_array()) {
      s.bounds.push_back(b.as_double());
    }
    for (const Json& c : v.at("counts").as_array()) {
      s.counts.push_back(static_cast<std::uint64_t>(c.as_double()));
    }
    s.count = static_cast<std::uint64_t>(v.at("count").as_double());
    s.sum = v.at("sum").as_double();
    out.histograms.push_back(std::move(s));
  }
  return out;
}

}  // namespace move::obs
