#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace move::obs {

namespace {

[[noreturn]] void fail(std::string_view what, std::size_t at) {
  throw std::runtime_error("Json::parse: " + std::string(what) +
                           " at offset " + std::to_string(at));
}

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 passes through verbatim
        }
    }
  }
  out += '"';
}

void write_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no Infinity/NaN; null is the conventional substitute.
    out += "null";
    return;
  }
  if (d == static_cast<double>(static_cast<long long>(d)) &&
      std::abs(d) < 1e15) {
    out += std::to_string(static_cast<long long>(d));
    return;
  }
  char buf[32];
  // Shortest representation that round-trips exactly.
  const auto res = std::to_chars(buf, buf + sizeof buf, d);
  out.append(buf, res.ptr);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters", pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'", pos_);
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal", pos_);
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal", pos_);
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal", pos_);
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(out));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.insert_or_assign(std::move(key), value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(out));
      }
      fail("expected ',' or '}'", pos_);
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(out));
    }
    while (true) {
      out.push_back(value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(out));
      }
      fail("expected ',' or ']'", pos_);
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape", pos_);
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("bad escape", pos_ - 1);
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("bad \\u escape", pos_);
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape", pos_ - 1);
    }
    // Encode the BMP code point as UTF-8 (surrogate pairs are not needed by
    // any producer in this repo; lone surrogates encode as-is).
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double d = 0.0;
    const auto res = std::from_chars(text_.data() + start,
                                     text_.data() + pos_, d);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_ ||
        start == pos_) {
      fail("bad number", start);
    }
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void wrong_kind(const char* want) {
  throw std::runtime_error(std::string("Json: value is not ") + want);
}

}  // namespace

bool Json::as_bool() const {
  if (const bool* b = std::get_if<bool>(&v_)) return *b;
  wrong_kind("a bool");
}

double Json::as_double() const {
  if (const double* d = std::get_if<double>(&v_)) return *d;
  wrong_kind("a number");
}

const std::string& Json::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&v_)) return *s;
  wrong_kind("a string");
}

const Json::Array& Json::as_array() const {
  if (const Array* a = std::get_if<Array>(&v_)) return *a;
  wrong_kind("an array");
}

const Json::Object& Json::as_object() const {
  if (const Object* o = std::get_if<Object>(&v_)) return *o;
  wrong_kind("an object");
}

Json::Array& Json::as_array() {
  if (Array* a = std::get_if<Array>(&v_)) return *a;
  wrong_kind("an array");
}

Json::Object& Json::as_object() {
  if (Object* o = std::get_if<Object>(&v_)) return *o;
  wrong_kind("an object");
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) v_ = Object{};
  return as_object()[key];
}

const Json& Json::at(const std::string& key) const {
  const Object& o = as_object();
  const auto it = o.find(key);
  if (it == o.end()) {
    throw std::runtime_error("Json::at: missing key '" + key + "'");
  }
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().contains(key);
}

void Json::push_back(Json v) {
  if (is_null()) v_ = Array{};
  as_array().push_back(std::move(v));
}

std::size_t Json::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  return 0;
}

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    write_number(out, as_double());
  } else if (is_string()) {
    write_escaped(out, as_string());
  } else if (is_array()) {
    const Array& a = as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i > 0) out += ',';
      newline(depth + 1);
      a[i].write(out, indent, depth + 1);
    }
    newline(depth);
    out += ']';
  } else {
    const Object& o = as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [k, v] : o) {
      if (!first) out += ',';
      first = false;
      newline(depth + 1);
      write_escaped(out, k);
      out += indent < 0 ? ":" : ": ";
      v.write(out, indent, depth + 1);
    }
    newline(depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace move::obs
