#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

/// Minimal self-contained JSON value — writer and strict parser.
///
/// The bench harness emits machine-readable `BENCH_<name>.json` files and
/// the obs tests must round-trip exports without external dependencies, so
/// this implements exactly the JSON subset those need: null, bool, finite
/// doubles, strings (with \uXXXX escapes on input, standard escapes on
/// output), arrays, and objects. Objects use std::map, so key order — and
/// therefore serialized output — is deterministic.
namespace move::obs {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(double d) : v_(d) {}
  Json(int i) : v_(static_cast<double>(i)) {}
  Json(unsigned int i) : v_(static_cast<double>(i)) {}
  Json(long i) : v_(static_cast<double>(i)) {}
  Json(unsigned long i) : v_(static_cast<double>(i)) {}
  Json(long long i) : v_(static_cast<double>(i)) {}
  Json(unsigned long long i) : v_(static_cast<double>(i)) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string_view s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(Array a) : v_(std::move(a)) {}
  Json(Object o) : v_(std::move(o)) {}

  [[nodiscard]] static Json object() { return Json(Object{}); }
  [[nodiscard]] static Json array() { return Json(Array{}); }

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(v_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(v_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(v_);
  }

  /// Typed accessors; throw std::runtime_error on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] Object& as_object();

  /// Object access: inserts a null member if absent (converts a null value
  /// to an object first, so `j["a"]["b"] = 1` works on a default Json).
  Json& operator[](const std::string& key);
  /// Const object lookup; throws if not an object or key absent.
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;

  /// Array append (converts a null value to an array first).
  void push_back(Json v);

  [[nodiscard]] std::size_t size() const;

  friend bool operator==(const Json& a, const Json& b) { return a.v_ == b.v_; }

  /// Serializes. indent < 0 -> compact single line; indent >= 0 -> pretty,
  /// `indent` spaces per level. Doubles print via shortest round-trip
  /// formatting, integers without a decimal point.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Strict parser; throws std::runtime_error with an offset on malformed
  /// input (trailing garbage included).
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  void write(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

}  // namespace move::obs
