#include "workload/filter_churn.hpp"

#include <stdexcept>

namespace move::workload {

FilterChurnStream::FilterChurnStream(TermSetTable pool,
                                     FilterChurnConfig config)
    : pool_(std::move(pool)),
      config_(config),
      rng_(common::named_stream(config.seed, "filter-churn")),
      bootstrap_left_(config.initial_live) {
  if (pool_.size() < config_.initial_live + 1) {
    throw std::invalid_argument(
        "FilterChurnStream: pool smaller than initial_live + 1");
  }
  if (config_.register_weight + config_.unregister_weight +
          config_.edit_weight <=
      0.0) {
    throw std::invalid_argument("FilterChurnStream: all weights zero");
  }
  pos_.assign(pool_.size(), kNowhere);
  live_rows_.reserve(pool_.size());
  // Stack ordered so row 0 registers first: bootstrap ids are sequential.
  dead_rows_.reserve(pool_.size());
  for (std::size_t r = pool_.size(); r-- > 0;) {
    dead_rows_.push_back(static_cast<std::uint32_t>(r));
  }
}

std::uint32_t FilterChurnStream::pick_live() {
  return live_rows_[common::uniform_below(rng_, live_rows_.size())];
}

void FilterChurnStream::make_live(std::uint32_t r) {
  pos_[r] = static_cast<std::uint32_t>(live_rows_.size());
  live_rows_.push_back(r);
}

void FilterChurnStream::make_dead(std::uint32_t r) {
  const std::uint32_t at = pos_[r];
  const std::uint32_t last = live_rows_.back();
  live_rows_[at] = last;
  pos_[last] = at;
  live_rows_.pop_back();
  pos_[r] = kNowhere;
  dead_rows_.push_back(r);
}

ChurnOp FilterChurnStream::next() {
  ++ops_;
  if (bootstrap_left_ > 0) {
    --bootstrap_left_;
    const std::uint32_t r = dead_rows_.back();
    dead_rows_.pop_back();
    make_live(r);
    return ChurnOp{ChurnOpKind::kRegister, r, 0};
  }

  const double total = config_.register_weight + config_.unregister_weight +
                       config_.edit_weight;
  double draw = common::uniform_unit(rng_) * total;
  ChurnOpKind kind = ChurnOpKind::kEdit;
  if (draw < config_.register_weight) {
    kind = ChurnOpKind::kRegister;
  } else if (draw < config_.register_weight + config_.unregister_weight) {
    kind = ChurnOpKind::kUnregister;
  }
  // Deterministic fallbacks keep every op valid: a register with no dead
  // rows flips to unregister (pool exhausted), an unregister/edit with
  // nothing live flips to register, an edit with no spare dead row
  // degrades to unregister.
  if (kind == ChurnOpKind::kRegister && dead_rows_.empty()) {
    kind = ChurnOpKind::kUnregister;
  }
  if (kind != ChurnOpKind::kRegister && live_rows_.empty()) {
    kind = ChurnOpKind::kRegister;
  }
  if (kind == ChurnOpKind::kEdit && dead_rows_.empty()) {
    kind = ChurnOpKind::kUnregister;
  }

  switch (kind) {
    case ChurnOpKind::kRegister: {
      const std::uint32_t r = dead_rows_.back();
      dead_rows_.pop_back();
      make_live(r);
      return ChurnOp{ChurnOpKind::kRegister, r, 0};
    }
    case ChurnOpKind::kUnregister: {
      const std::uint32_t r = pick_live();
      make_dead(r);
      return ChurnOp{ChurnOpKind::kUnregister, r, 0};
    }
    case ChurnOpKind::kEdit:
      break;
  }
  const std::uint32_t old_row = pick_live();
  make_dead(old_row);
  // make_dead pushed old_row on top of the dead stack, and the stack held
  // at least one other row (checked above) — an edit must register a
  // DIFFERENT term set, so claim the row beneath the top.
  const std::uint32_t replacement = dead_rows_[dead_rows_.size() - 2];
  dead_rows_[dead_rows_.size() - 2] = dead_rows_.back();
  dead_rows_.pop_back();
  make_live(replacement);
  return ChurnOp{ChurnOpKind::kEdit, old_row, replacement};
}

}  // namespace move::workload
