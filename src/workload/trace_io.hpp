#pragma once

#include <iosfwd>
#include <string>

#include "workload/term_set_table.hpp"

/// Binary serialization of term-set tables (filter traces and corpora).
///
/// Generating a paper-scale trace takes minutes; serializing it lets bench
/// runs share exact inputs across machines and records the precise workload
/// behind every number in EXPERIMENTS.md. Format (little-endian):
///
///   magic   "MVTS"            4 bytes
///   version u32               currently 1
///   rows    u64
///   terms   u64               total term count
///   offsets u64[rows + 1]
///   termid  u32[terms]
///
/// Self-describing and versioned; loads validate structure (monotone
/// offsets, matching totals) and fail with std::runtime_error on corruption.
namespace move::workload {

/// Writes `table` to a binary stream. Throws std::runtime_error on I/O
/// failure.
void save_table(const TermSetTable& table, std::ostream& out);

/// Reads a table back. Throws std::runtime_error on malformed input.
[[nodiscard]] TermSetTable load_table(std::istream& in);

/// Convenience file wrappers.
void save_table_file(const TermSetTable& table, const std::string& path);
[[nodiscard]] TermSetTable load_table_file(const std::string& path);

}  // namespace move::workload
