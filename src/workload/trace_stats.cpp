#include "workload/trace_stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"

namespace move::workload {

std::vector<double> TraceStats::ranked() const {
  std::vector<double> sorted;
  sorted.reserve(share.size());
  for (double s : share) {
    if (s > 0.0) sorted.push_back(s);
  }
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  return sorted;
}

double TraceStats::head_mass(std::size_t k) const {
  const auto r = ranked();
  double total = 0.0, head = 0.0;
  for (std::size_t i = 0; i < r.size(); ++i) {
    total += r[i];
    if (i < k) head += r[i];
  }
  return total > 0.0 ? head / total : 0.0;
}

std::vector<TermId> TraceStats::top_terms(std::size_t k) const {
  const auto idx = common::top_k_indices(share, k);
  std::vector<TermId> out;
  out.reserve(idx.size());
  for (std::size_t i : idx) {
    if (share[i] <= 0.0) break;  // ran out of non-zero terms
    out.push_back(TermId{static_cast<std::uint32_t>(i)});
  }
  return out;
}

double TraceStats::entropy(std::size_t limit) const {
  auto r = ranked();
  if (limit > 0 && r.size() > limit) r.resize(limit);
  return common::shannon_entropy(r);
}

std::size_t TraceStats::distinct_terms() const {
  std::size_t n = 0;
  for (double s : share) {
    if (s > 0.0) ++n;
  }
  return n;
}

TraceStats compute_stats(const TermSetTable& table, std::size_t universe) {
  TraceStats stats;
  stats.rows = table.size();
  stats.count.assign(universe, 0);
  for (std::size_t i = 0; i < table.size(); ++i) {
    for (TermId t : table.row(i)) {
      if (t.value < universe) ++stats.count[t.value];
    }
  }
  stats.share.assign(universe, 0.0);
  if (stats.rows > 0) {
    for (std::size_t t = 0; t < universe; ++t) {
      stats.share[t] = static_cast<double>(stats.count[t]) /
                       static_cast<double>(stats.rows);
    }
  }
  return stats;
}

double top_k_overlap(const TraceStats& a, const TraceStats& b,
                     std::size_t k) {
  const auto ta = a.top_terms(k);
  const auto tb = b.top_terms(k);
  if (ta.empty()) return 0.0;
  std::vector<std::size_t> ia, ib;
  ia.reserve(ta.size());
  ib.reserve(tb.size());
  for (TermId t : ta) ia.push_back(t.value);
  for (TermId t : tb) ib.push_back(t.value);
  return common::overlap_fraction(ia, ib);
}

std::vector<std::uint64_t> row_size_histogram(const TermSetTable& table) {
  std::vector<std::uint64_t> hist;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const std::size_t len = table.row(i).size();
    if (len >= hist.size()) hist.resize(len + 1, 0);
    ++hist[len];
  }
  if (hist.empty()) hist.resize(1, 0);
  return hist;
}

}  // namespace move::workload
