#include "workload/corpus.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "common/zipf.hpp"

namespace move::workload {

CorpusConfig CorpusConfig::trec_ap_like(double scale,
                                        std::size_t vocabulary) {
  if (scale <= 0.0) throw std::invalid_argument("trec_ap_like: scale <= 0");
  CorpusConfig cfg;
  cfg.name = "trec-ap";
  // AP is tiny (1,050 articles) — never scale it below its real size.
  cfg.num_docs = std::max<std::size_t>(
      200, static_cast<std::size_t>(1050.0 * std::max(scale, 1.0)));
  cfg.vocabulary_size = vocabulary;
  cfg.mean_terms_per_doc = 6054.9;
  // Flatter frequency profile than WT (paper: entropy 9.4473 vs 6.7593).
  cfg.zipf_skew = 0.72;
  cfg.size_sigma = 0.35;
  cfg.head_overlap = 0.269;
  cfg.seed = 0x5eedaa01;
  return cfg;
}

CorpusConfig CorpusConfig::trec_wt_like(double scale,
                                        std::size_t vocabulary) {
  if (scale <= 0.0) throw std::invalid_argument("trec_wt_like: scale <= 0");
  CorpusConfig cfg;
  cfg.name = "trec-wt";
  cfg.num_docs =
      std::max<std::size_t>(1000, static_cast<std::size_t>(1.69e6 * scale));
  cfg.vocabulary_size = vocabulary;
  cfg.mean_terms_per_doc = 64.8;
  cfg.zipf_skew = 1.05;  // skewer than AP
  cfg.size_sigma = 0.55;
  cfg.head_overlap = 0.313;
  cfg.seed = 0x5eedaa02;
  return cfg;
}

CorpusGenerator::CorpusGenerator(CorpusConfig config)
    : config_(std::move(config)) {
  if (config_.vocabulary_size == 0) {
    throw std::invalid_argument("CorpusGenerator: empty vocabulary");
  }
  if (config_.head_count > config_.vocabulary_size) {
    config_.head_count = config_.vocabulary_size;
  }

  // Build the doc-rank -> term permutation that realizes the head overlap.
  // Query terms are popularity-ranked by construction, so "top-1000 query
  // terms" are simply ids [0, head_count). We route `head_overlap` of our
  // own head ranks there and the rest into the tail id space, then fill the
  // remaining ranks with the unused ids in shuffled order.
  const std::size_t n = config_.vocabulary_size;
  const std::size_t head = config_.head_count;
  common::SplitMix64 rng(config_.seed ^ 0x9e3779b97f4a7c15ULL);

  // Head ids stay in popularity-rank order with only a local jitter: when a
  // hot document rank maps into the query head it lands on a comparably hot
  // query term. This models the real co-occurrence of top terms in both
  // distributions (the paper's hot terms are hot in p AND q, which is what
  // creates the IL hot spots its allocation removes); a full shuffle here
  // would decorrelate the heads and erase the effect while keeping the same
  // set-overlap statistic.
  std::vector<std::uint32_t> head_ids(head);
  std::iota(head_ids.begin(), head_ids.end(), 0u);
  constexpr std::size_t kJitterWindow = 16;
  for (std::size_t start = 0; start < head_ids.size();
       start += kJitterWindow) {
    const std::size_t len = std::min(kJitterWindow, head_ids.size() - start);
    for (std::size_t i = len; i > 1; --i) {
      std::swap(head_ids[start + i - 1],
                head_ids[start + common::uniform_below(rng, i)]);
    }
  }
  std::vector<std::uint32_t> tail_ids(n - head);
  std::iota(tail_ids.begin(), tail_ids.end(),
            static_cast<std::uint32_t>(head));
  for (std::size_t i = tail_ids.size(); i > 1; --i) {
    std::swap(tail_ids[i - 1], tail_ids[common::uniform_below(rng, i)]);
  }

  rank_to_term_.resize(n);
  const auto head_hits =
      static_cast<std::size_t>(std::round(config_.head_overlap *
                                          static_cast<double>(head)));
  std::size_t next_head = 0, next_tail = 0;
  // Choose which of our head ranks land in the query head: spread them
  // evenly so the very top doc terms include query-popular terms (matching
  // the paper's observation that hot terms co-occur in both distributions).
  for (std::size_t r = 0; r < head; ++r) {
    const bool into_query_head =
        head_hits > 0 &&
        (r * head_hits) / head != ((r + 1) * head_hits) / head;
    if (into_query_head && next_head < head_ids.size()) {
      rank_to_term_[r] = head_ids[next_head++];
    } else if (next_tail < tail_ids.size()) {
      rank_to_term_[r] = tail_ids[next_tail++];
    } else {
      rank_to_term_[r] = head_ids[next_head++];
    }
  }
  // Remaining ranks take whatever ids are left, heads first (they are still
  // moderately frequent), then tails.
  for (std::size_t r = head; r < n; ++r) {
    if (next_head < head_ids.size()) {
      rank_to_term_[r] = head_ids[next_head++];
    } else {
      rank_to_term_[r] = tail_ids[next_tail++];
    }
  }
}

TermSetTable CorpusGenerator::generate(std::size_t count) const {
  common::SplitMix64 rng(config_.seed);
  common::SplitMix64 size_rng = rng.fork();
  common::SplitMix64 term_rng = rng.fork();

  const common::ZipfSampler zipf(config_.vocabulary_size, config_.zipf_skew);

  // Lognormal document sizes with the configured mean:
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2)  =>  solve for mu.
  const double sigma = config_.size_sigma;
  const double mu = std::log(config_.mean_terms_per_doc) - sigma * sigma / 2.0;

  TermSetTable table;
  table.reserve(count,
                static_cast<std::uint64_t>(static_cast<double>(count) *
                                           config_.mean_terms_per_doc));

  std::vector<TermId> terms;
  std::unordered_set<std::uint32_t> seen;
  for (std::size_t i = 0; i < count; ++i) {
    // Box-Muller normal draw for the lognormal size.
    const double u1 = std::max(common::uniform_unit(size_rng), 1e-12);
    const double u2 = common::uniform_unit(size_rng);
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    auto target = static_cast<std::size_t>(std::llround(
        std::exp(mu + sigma * z)));
    target = std::clamp(target, config_.min_terms,
                        std::min(config_.max_terms,
                                 config_.vocabulary_size / 2));

    terms.clear();
    seen.clear();
    // Rejection-deduplication; the cap bounds the coupon-collector tail on
    // very large documents drawn from a skewed distribution.
    std::size_t attempts = 0;
    const std::size_t max_attempts = target * 12 + 64;
    while (terms.size() < target && attempts < max_attempts) {
      ++attempts;
      const auto rank = zipf(term_rng);
      const std::uint32_t id = rank_to_term_[rank];
      if (seen.insert(id).second) terms.push_back(TermId{id});
    }
    std::sort(terms.begin(), terms.end());
    table.add(terms);
  }
  return table;
}

}  // namespace move::workload
