#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workload/term_set_table.hpp"

/// Synthetic TREC-like document corpora.
///
/// The paper evaluates on two real corpora (§VI-A2) whose published
/// statistics we reproduce synthetically:
///  * TREC WT10G: ~1.69 M web pages, 64.8 terms/document on average,
///    strongly skewed term frequency (entropy 6.7593 over the top ranks);
///  * TREC AP: 1,050 Associated Press articles, 6,054.9 terms/document,
///    flatter frequency profile (entropy 9.4473).
/// plus the cross statistic that couples filters to documents: 26.9 % (AP) /
/// 31.3 % (WT) of the top-1000 popular *query* terms are also among the
/// top-1000 frequent *document* terms.
///
/// Query-term ids are popularity-ranked (TermId{0} = most popular filter
/// term, see QueryTraceGenerator); the corpus generator builds a rank->term
/// permutation that sends the configured fraction of its own head ranks into
/// the query head, realizing the published overlap.
namespace move::workload {

struct CorpusConfig {
  std::string name = "corpus";
  std::size_t num_docs = 10'000;
  std::size_t vocabulary_size = 75'800;  ///< must match the query trace
  double zipf_skew = 1.0;                ///< document term frequency skew
  double mean_terms_per_doc = 64.8;
  /// Lognormal spread of per-document sizes (sigma of log size).
  double size_sigma = 0.45;
  std::size_t min_terms = 2;
  std::size_t max_terms = 40'000;
  /// Overlap engineering: fraction of the top `head_count` document ranks
  /// mapped onto the top `head_count` query terms.
  std::size_t head_count = 1'000;
  double head_overlap = 0.30;
  std::uint64_t seed = 0x5eed0002;

  /// TREC-AP-like corpus at the given scale (vocabulary must be supplied by
  /// the caller so it matches the filter trace's universe).
  [[nodiscard]] static CorpusConfig trec_ap_like(double scale,
                                                 std::size_t vocabulary);
  /// TREC-WT10G-like corpus at the given scale.
  [[nodiscard]] static CorpusConfig trec_wt_like(double scale,
                                                 std::size_t vocabulary);
};

class CorpusGenerator {
 public:
  explicit CorpusGenerator(CorpusConfig config);

  /// Generates `count` documents (deterministic in config.seed; prefixes of
  /// a longer run are identical to a shorter run).
  [[nodiscard]] TermSetTable generate(std::size_t count) const;
  [[nodiscard]] TermSetTable generate() const {
    return generate(config_.num_docs);
  }

  [[nodiscard]] const CorpusConfig& config() const noexcept { return config_; }

  /// The doc-rank -> TermId permutation (exposed for tests of the overlap
  /// machinery).
  [[nodiscard]] const std::vector<std::uint32_t>& rank_to_term()
      const noexcept {
    return rank_to_term_;
  }

 private:
  CorpusConfig config_;
  std::vector<std::uint32_t> rank_to_term_;
};

}  // namespace move::workload
