#pragma once

#include <array>
#include <cstdint>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "workload/term_set_table.hpp"

/// Synthetic MSN-like keyword filter trace.
///
/// No public trace of Google-Alerts-style profile filters exists, so the
/// paper uses an MSN web-search query log as a proxy (§VI-A1) and publishes
/// its statistics; we synthesize a trace matching every published number:
///  * 4,000,000 queries over 757,996 distinct terms (scaled by callers),
///  * 2.843 terms per query on average,
///  * cumulative share of queries with <=1/2/3 terms: 31.33/67.75/85.31 %,
///  * skewed term popularity with the top-1000 terms accumulating 0.437 of
///    all term occurrences (Fig. 4).
///
/// Term ids are assigned in popularity-rank order: TermId{0} is the most
/// popular filter term. The corpus generator exploits this to control the
/// overlap between popular query terms and frequent document terms.
namespace move::workload {

struct QueryTraceConfig {
  std::size_t num_filters = 400'000;
  std::size_t vocabulary_size = 75'800;
  /// Target popularity mass of the head of the ranking (Fig. 4 shape).
  std::size_t head_count = 1'000;
  double head_mass = 0.437;
  /// Published query-length CDF at lengths 1, 2, 3.
  std::array<double, 3> short_length_cdf{0.3133, 0.6775, 0.8531};
  double mean_terms = 2.843;
  std::size_t max_terms = 30;
  std::uint64_t seed = 0x5eed0001;

  /// Returns the paper-scale configuration multiplied by `scale` (num
  /// filters and vocabulary shrink together so the density of the trace is
  /// preserved).
  [[nodiscard]] static QueryTraceConfig msn_like(double scale);
};

class QueryTraceGenerator {
 public:
  explicit QueryTraceGenerator(QueryTraceConfig config);

  /// Generates the whole trace deterministically from the config seed.
  [[nodiscard]] TermSetTable generate() const;

  /// Generates only `count` filters (first `count` of the full trace).
  [[nodiscard]] TermSetTable generate(std::size_t count) const;

  /// The Zipf exponent found by bisection to hit (head_count, head_mass).
  [[nodiscard]] double fitted_skew() const noexcept { return skew_; }

  /// Per-length probabilities realized by the length model (index 0 unused).
  [[nodiscard]] const std::vector<double>& length_pmf() const noexcept {
    return length_pmf_;
  }

  [[nodiscard]] const QueryTraceConfig& config() const noexcept {
    return config_;
  }

 private:
  QueryTraceConfig config_;
  double skew_;
  std::vector<double> length_pmf_;
};

/// Bisects a Zipf exponent s over [0.3, 2.5] such that the top `head_count`
/// ranks of Zipf(vocabulary, s) carry `head_mass` probability. Exposed for
/// reuse by the corpus generator and for direct testing.
[[nodiscard]] double fit_zipf_head_mass(std::size_t vocabulary,
                                        std::size_t head_count,
                                        double head_mass);

}  // namespace move::workload
