#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

/// Flat row-oriented storage for many small term sets.
///
/// Both workload artifacts — the filter trace (millions of 2-3 term queries)
/// and the document corpus (tens to thousands of terms per document) — are
/// lists of term sets. Storing them as one flat TermId array plus offsets
/// avoids millions of small vector allocations and keeps scans sequential.
namespace move::workload {

class TermSetTable {
 public:
  TermSetTable() = default;

  /// Appends a row. Rows are stored as given; generators append sorted,
  /// deduplicated sets.
  void add(std::span<const TermId> terms);

  [[nodiscard]] std::span<const TermId> row(std::size_t i) const;
  [[nodiscard]] std::size_t size() const noexcept {
    return offsets_.size() - 1;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] std::uint64_t total_terms() const noexcept {
    return flat_.size();
  }
  [[nodiscard]] double mean_row_size() const noexcept {
    return empty() ? 0.0
                   : static_cast<double>(total_terms()) /
                         static_cast<double>(size());
  }

  void reserve(std::size_t rows, std::uint64_t terms);

 private:
  std::vector<std::uint64_t> offsets_{0};
  std::vector<TermId> flat_;
};

}  // namespace move::workload
