#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "workload/term_set_table.hpp"

/// Seeded continuous filter-churn workload: an endless stream of
/// register / unregister / edit operations over a pre-generated pool of
/// filter term sets (typically QueryTraceGenerator output, so churned
/// filters follow the same MSN-like statistics as the static trace).
///
/// The stream is pure op generation — it tracks only which pool rows are
/// live and never touches an index. A harness (index::ChurnHarness, the
/// fig13 churn section, fault::FaultInjector's churn sink) applies the ops
/// to real state; the split keeps the generator reusable across layers and
/// the dependency direction clean (index links workload, not vice versa).
///
/// Determinism: the op sequence is a function of (pool, config.seed) alone.
/// Ops are always valid by construction — unregister/edit target a live
/// row, register/edit claim a dead row — with deterministic fallbacks when
/// a side is exhausted (e.g. an unregister draw with nothing live becomes a
/// register), so consumers never need to skip ops.
namespace move::workload {

enum class ChurnOpKind : std::uint8_t {
  kRegister,    ///< row becomes live
  kUnregister,  ///< row becomes dead
  kEdit,        ///< row retires, new_row registers (new term set, new id)
};

/// One churn step. Pool rows double as stable filter keys: a row is live
/// between its register and its unregister, and an edit is exactly
/// unregister(row) + register(new_row) — modelling a subscriber changing
/// their keyword set (flat filter stores are append-only, so an edit mints
/// a fresh id rather than rewriting in place).
struct ChurnOp {
  ChurnOpKind kind = ChurnOpKind::kRegister;
  std::uint32_t row = 0;      ///< pool row registered / unregistered / retired
  std::uint32_t new_row = 0;  ///< kEdit only: replacement pool row
};

struct FilterChurnConfig {
  /// Rows registered up front (the first `initial_live` ops are
  /// deterministic registers of rows 0..initial_live-1) so the steady-state
  /// stream churns a populated index.
  std::size_t initial_live = 1024;
  /// Steady-state op mix (normalized internally; must not all be zero).
  double register_weight = 0.35;
  double unregister_weight = 0.35;
  double edit_weight = 0.30;
  std::uint64_t seed = 0x5eedc4a2ULL;
};

class FilterChurnStream {
 public:
  /// `pool` supplies the term sets (row i = filter key i); it must hold at
  /// least config.initial_live + 1 rows.
  FilterChurnStream(TermSetTable pool, FilterChurnConfig config);

  /// Produces the next op and updates the live/dead bookkeeping.
  ChurnOp next();

  /// Term set of a pool row (valid whether live or dead).
  [[nodiscard]] std::span<const TermId> row(std::uint32_t r) const {
    return pool_.row(r);
  }

  [[nodiscard]] std::size_t live_count() const noexcept {
    return live_rows_.size();
  }
  [[nodiscard]] bool is_live(std::uint32_t r) const {
    return pos_[r] != kNowhere;
  }
  [[nodiscard]] const TermSetTable& pool() const noexcept { return pool_; }
  [[nodiscard]] std::uint64_t ops_emitted() const noexcept { return ops_; }

 private:
  static constexpr std::uint32_t kNowhere = 0xffffffffu;

  [[nodiscard]] std::uint32_t pick_live();
  void make_live(std::uint32_t r);
  void make_dead(std::uint32_t r);

  TermSetTable pool_;
  FilterChurnConfig config_;
  common::SplitMix64 rng_;
  std::vector<std::uint32_t> live_rows_;  // unordered; swap-pop removal
  std::vector<std::uint32_t> dead_rows_;  // stack; top = next register
  std::vector<std::uint32_t> pos_;        // row -> index in live_rows_
  std::uint64_t ops_ = 0;
  std::size_t bootstrap_left_ = 0;
};

}  // namespace move::workload
