#include "workload/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace move::workload {

namespace {

constexpr char kMagic[4] = {'M', 'V', 'T', 'S'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("trace_io: truncated input");
  return value;
}

}  // namespace

void save_table(const TermSetTable& table, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(table.size()));
  write_pod(out, table.total_terms());
  // Offsets reconstructed from row sizes: rows are contiguous by design.
  std::uint64_t offset = 0;
  write_pod(out, offset);
  for (std::size_t i = 0; i < table.size(); ++i) {
    offset += table.row(i).size();
    write_pod(out, offset);
  }
  for (std::size_t i = 0; i < table.size(); ++i) {
    const auto row = table.row(i);
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size() * sizeof(TermId)));
  }
  if (!out) throw std::runtime_error("trace_io: write failed");
}

TermSetTable load_table(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("trace_io: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("trace_io: unsupported version");
  }
  const auto rows = read_pod<std::uint64_t>(in);
  const auto total_terms = read_pod<std::uint64_t>(in);

  std::vector<std::uint64_t> offsets(rows + 1);
  for (auto& o : offsets) o = read_pod<std::uint64_t>(in);
  if (offsets.front() != 0 || offsets.back() != total_terms) {
    throw std::runtime_error("trace_io: inconsistent offsets");
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      throw std::runtime_error("trace_io: non-monotone offsets");
    }
  }

  TermSetTable table;
  table.reserve(rows, total_terms);
  std::vector<TermId> row;
  for (std::uint64_t i = 0; i < rows; ++i) {
    const auto len = offsets[i + 1] - offsets[i];
    row.resize(len);
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(len * sizeof(TermId)));
    if (!in) throw std::runtime_error("trace_io: truncated rows");
    table.add(row);
  }
  return table;
}

void save_table_file(const TermSetTable& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace_io: cannot open " + path);
  save_table(table, out);
}

TermSetTable load_table_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace_io: cannot open " + path);
  return load_table(in);
}

}  // namespace move::workload
