#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "workload/term_set_table.hpp"

/// Trace statistics — the quantities §VI-A derives from its datasets.
///
/// For a filter trace this yields the term *popularity* p_i (fraction of
/// filters containing term i, Fig. 4); for a corpus it yields the term
/// *frequency* q_i (fraction of documents containing term i, Fig. 5). The
/// same p_i/q_i vectors drive the MOVE optimizer's proactive allocation.
namespace move::workload {

struct TraceStats {
  /// share[t] = fraction of rows containing TermId t (p_i or q_i).
  std::vector<double> share;
  /// count[t] = absolute number of rows containing TermId t.
  std::vector<std::uint64_t> count;
  std::size_t rows = 0;

  /// Ranked shares, descending (the y-values of Fig. 4 / Fig. 5).
  [[nodiscard]] std::vector<double> ranked() const;

  /// Sum of the top-k ranked shares (e.g. the paper's "top-1000 terms
  /// accumulate 0.437").
  [[nodiscard]] double head_mass(std::size_t k) const;

  /// TermIds of the k most frequent/popular terms, descending.
  [[nodiscard]] std::vector<TermId> top_terms(std::size_t k) const;

  /// Shannon entropy (bits) of the occurrence distribution over the top
  /// `limit` ranked terms (the paper computes its Fig. 5 entropies over the
  /// plotted top-1e5 ranks); pass 0 for all terms.
  [[nodiscard]] double entropy(std::size_t limit = 0) const;

  /// Number of terms with non-zero share.
  [[nodiscard]] std::size_t distinct_terms() const;
};

/// Scans a table and computes per-term occurrence statistics.
/// @param universe size of the TermId space (stats are indexed by TermId).
[[nodiscard]] TraceStats compute_stats(const TermSetTable& table,
                                       std::size_t universe);

/// Fraction of `a`'s top-k terms that are also among `b`'s top-k terms —
/// the paper's popular-query-term vs frequent-document-term overlap
/// (26.9 % AP / 31.3 % WT).
[[nodiscard]] double top_k_overlap(const TraceStats& a, const TraceStats& b,
                                   std::size_t k);

/// Histogram of row sizes (index = size); entry 0 counts empty rows.
[[nodiscard]] std::vector<std::uint64_t> row_size_histogram(
    const TermSetTable& table);

}  // namespace move::workload
