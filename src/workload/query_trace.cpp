#include "workload/query_trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace move::workload {

namespace {

/// Head-mass of Zipf(n, s) at a given exponent: sum of the first k
/// probabilities. O(n) per evaluation using precomputed log ranks.
double head_mass_at(const std::vector<double>& log_ranks, std::size_t k,
                    double s) {
  double head = 0.0, total = 0.0;
  for (std::size_t i = 0; i < log_ranks.size(); ++i) {
    const double w = std::exp(-s * log_ranks[i]);
    total += w;
    if (i < k) head += w;
  }
  return head / total;
}

/// Geometric tail pmf on lengths [4, max_len] with decay rho, scaled to
/// total mass `tail_mass`. Returns the mean length contribution of the tail.
double tail_mean(double rho, double tail_mass, std::size_t max_len,
                 std::vector<double>* out_pmf) {
  double norm = 0.0;
  for (std::size_t len = 4; len <= max_len; ++len) {
    norm += std::pow(rho, static_cast<double>(len - 4));
  }
  double mean = 0.0;
  for (std::size_t len = 4; len <= max_len; ++len) {
    const double p =
        tail_mass * std::pow(rho, static_cast<double>(len - 4)) / norm;
    if (out_pmf) (*out_pmf)[len] = p;
    mean += p * static_cast<double>(len);
  }
  return mean;
}

}  // namespace

double fit_zipf_head_mass(std::size_t vocabulary, std::size_t head_count,
                          double head_mass) {
  if (head_count >= vocabulary) return 1.0;
  std::vector<double> log_ranks(vocabulary);
  for (std::size_t i = 0; i < vocabulary; ++i) {
    log_ranks[i] = std::log(static_cast<double>(i + 1));
  }
  double lo = 0.3, hi = 2.5;
  // head_mass_at is monotonically increasing in s.
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (head_mass_at(log_ranks, head_count, mid) < head_mass) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

QueryTraceConfig QueryTraceConfig::msn_like(double scale) {
  if (scale <= 0.0) throw std::invalid_argument("msn_like: scale must be > 0");
  QueryTraceConfig cfg;
  cfg.num_filters =
      std::max<std::size_t>(1000, static_cast<std::size_t>(4e6 * scale));
  cfg.vocabulary_size =
      std::max<std::size_t>(2000, static_cast<std::size_t>(757'996 * scale));
  cfg.head_count = std::max<std::size_t>(
      10, static_cast<std::size_t>(1000.0 * std::min(1.0, scale * 10)));
  return cfg;
}

QueryTraceGenerator::QueryTraceGenerator(QueryTraceConfig config)
    : config_(config) {
  if (config_.vocabulary_size == 0 || config_.num_filters == 0) {
    throw std::invalid_argument("QueryTraceGenerator: empty config");
  }
  skew_ = fit_zipf_head_mass(config_.vocabulary_size, config_.head_count,
                             config_.head_mass);

  // Length model: the three published CDF points pin P(1..3); the remaining
  // mass sits on a geometric tail whose decay is bisected so the overall
  // mean hits the published 2.843 terms/query.
  const auto& cdf = config_.short_length_cdf;
  const double p1 = cdf[0];
  const double p2 = cdf[1] - cdf[0];
  const double p3 = cdf[2] - cdf[1];
  const double tail_mass = 1.0 - cdf[2];
  if (p1 < 0 || p2 < 0 || p3 < 0 || tail_mass < 0) {
    throw std::invalid_argument("QueryTraceGenerator: CDF not monotone");
  }
  length_pmf_.assign(config_.max_terms + 1, 0.0);
  length_pmf_[1] = p1;
  length_pmf_[2] = p2;
  length_pmf_[3] = p3;
  const double short_mean = p1 + 2 * p2 + 3 * p3;
  const double needed_tail_mean = config_.mean_terms - short_mean;
  if (tail_mass > 1e-12) {
    double lo = 0.05, hi = 0.999;  // tail_mean is increasing in rho
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (tail_mean(mid, tail_mass, config_.max_terms, nullptr) <
          needed_tail_mean) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    tail_mean(0.5 * (lo + hi), tail_mass, config_.max_terms, &length_pmf_);
  }
}

TermSetTable QueryTraceGenerator::generate() const {
  return generate(config_.num_filters);
}

TermSetTable QueryTraceGenerator::generate(std::size_t count) const {
  common::SplitMix64 rng(config_.seed);
  common::SplitMix64 length_rng = rng.fork();
  common::SplitMix64 term_rng = rng.fork();

  const common::ZipfSampler zipf(config_.vocabulary_size, skew_);
  const common::AliasSampler lengths(length_pmf_);

  TermSetTable table;
  table.reserve(count, static_cast<std::uint64_t>(
                           static_cast<double>(count) * config_.mean_terms));

  std::vector<TermId> terms;
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t len = lengths(length_rng);
    if (len == 0) len = 1;  // index 0 of the pmf is unused padding
    terms.clear();
    // Rejection-deduplicate: queries are tiny relative to the vocabulary,
    // so a handful of extra draws suffices.
    std::size_t attempts = 0;
    while (terms.size() < len && attempts < len * 20 + 20) {
      ++attempts;
      const TermId t{static_cast<std::uint32_t>(zipf(term_rng))};
      if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
        terms.push_back(t);
      }
    }
    std::sort(terms.begin(), terms.end());
    table.add(terms);
  }
  return table;
}

}  // namespace move::workload
