#include "workload/term_set_table.hpp"

#include <stdexcept>

namespace move::workload {

void TermSetTable::add(std::span<const TermId> terms) {
  flat_.insert(flat_.end(), terms.begin(), terms.end());
  offsets_.push_back(flat_.size());
}

std::span<const TermId> TermSetTable::row(std::size_t i) const {
  if (i >= size()) throw std::out_of_range("TermSetTable::row");
  return {flat_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
}

void TermSetTable::reserve(std::size_t rows, std::uint64_t terms) {
  offsets_.reserve(rows + 1);
  flat_.reserve(terms);
}

}  // namespace move::workload
