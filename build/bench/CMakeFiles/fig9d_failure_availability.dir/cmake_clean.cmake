file(REMOVE_RECURSE
  "CMakeFiles/fig9d_failure_availability.dir/fig9d_failure_availability.cpp.o"
  "CMakeFiles/fig9d_failure_availability.dir/fig9d_failure_availability.cpp.o.d"
  "fig9d_failure_availability"
  "fig9d_failure_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9d_failure_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
