# Empty dependencies file for fig9d_failure_availability.
# This may be replaced when dependencies are built.
