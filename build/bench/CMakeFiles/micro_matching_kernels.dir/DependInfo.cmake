
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_matching_kernels.cpp" "bench/CMakeFiles/micro_matching_kernels.dir/micro_matching_kernels.cpp.o" "gcc" "bench/CMakeFiles/micro_matching_kernels.dir/micro_matching_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/move_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/move_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/move_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/move_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/move_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/move_index.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/move_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/move_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/move_common.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/move_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
