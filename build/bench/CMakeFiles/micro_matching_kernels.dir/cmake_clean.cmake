file(REMOVE_RECURSE
  "CMakeFiles/micro_matching_kernels.dir/micro_matching_kernels.cpp.o"
  "CMakeFiles/micro_matching_kernels.dir/micro_matching_kernels.cpp.o.d"
  "micro_matching_kernels"
  "micro_matching_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_matching_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
