# Empty dependencies file for micro_matching_kernels.
# This may be replaced when dependencies are built.
