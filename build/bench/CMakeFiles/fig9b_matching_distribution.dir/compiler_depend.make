# Empty compiler generated dependencies file for fig9b_matching_distribution.
# This may be replaced when dependencies are built.
