file(REMOVE_RECURSE
  "CMakeFiles/fig9b_matching_distribution.dir/fig9b_matching_distribution.cpp.o"
  "CMakeFiles/fig9b_matching_distribution.dir/fig9b_matching_distribution.cpp.o.d"
  "fig9b_matching_distribution"
  "fig9b_matching_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_matching_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
