file(REMOVE_RECURSE
  "CMakeFiles/ablation_allocation.dir/ablation_allocation.cpp.o"
  "CMakeFiles/ablation_allocation.dir/ablation_allocation.cpp.o.d"
  "ablation_allocation"
  "ablation_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
