# Empty compiler generated dependencies file for table1_trace_statistics.
# This may be replaced when dependencies are built.
