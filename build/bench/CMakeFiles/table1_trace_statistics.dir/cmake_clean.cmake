file(REMOVE_RECURSE
  "CMakeFiles/table1_trace_statistics.dir/table1_trace_statistics.cpp.o"
  "CMakeFiles/table1_trace_statistics.dir/table1_trace_statistics.cpp.o.d"
  "table1_trace_statistics"
  "table1_trace_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_trace_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
