file(REMOVE_RECURSE
  "CMakeFiles/fig8a_throughput_vs_filters.dir/fig8a_throughput_vs_filters.cpp.o"
  "CMakeFiles/fig8a_throughput_vs_filters.dir/fig8a_throughput_vs_filters.cpp.o.d"
  "fig8a_throughput_vs_filters"
  "fig8a_throughput_vs_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_throughput_vs_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
