# Empty dependencies file for fig8a_throughput_vs_filters.
# This may be replaced when dependencies are built.
