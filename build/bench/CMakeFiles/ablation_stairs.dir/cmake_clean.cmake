file(REMOVE_RECURSE
  "CMakeFiles/ablation_stairs.dir/ablation_stairs.cpp.o"
  "CMakeFiles/ablation_stairs.dir/ablation_stairs.cpp.o.d"
  "ablation_stairs"
  "ablation_stairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
