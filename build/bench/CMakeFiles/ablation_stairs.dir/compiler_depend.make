# Empty compiler generated dependencies file for ablation_stairs.
# This may be replaced when dependencies are built.
