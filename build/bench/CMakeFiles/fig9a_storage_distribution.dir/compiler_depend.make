# Empty compiler generated dependencies file for fig9a_storage_distribution.
# This may be replaced when dependencies are built.
