file(REMOVE_RECURSE
  "CMakeFiles/fig9a_storage_distribution.dir/fig9a_storage_distribution.cpp.o"
  "CMakeFiles/fig9a_storage_distribution.dir/fig9a_storage_distribution.cpp.o.d"
  "fig9a_storage_distribution"
  "fig9a_storage_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9a_storage_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
