file(REMOVE_RECURSE
  "CMakeFiles/fig6_single_node_ap.dir/fig6_single_node_ap.cpp.o"
  "CMakeFiles/fig6_single_node_ap.dir/fig6_single_node_ap.cpp.o.d"
  "fig6_single_node_ap"
  "fig6_single_node_ap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_single_node_ap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
