# Empty dependencies file for fig6_single_node_ap.
# This may be replaced when dependencies are built.
