# Empty dependencies file for fig8b_throughput_vs_docs.
# This may be replaced when dependencies are built.
