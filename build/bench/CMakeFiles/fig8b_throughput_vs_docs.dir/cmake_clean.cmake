file(REMOVE_RECURSE
  "CMakeFiles/fig8b_throughput_vs_docs.dir/fig8b_throughput_vs_docs.cpp.o"
  "CMakeFiles/fig8b_throughput_vs_docs.dir/fig8b_throughput_vs_docs.cpp.o.d"
  "fig8b_throughput_vs_docs"
  "fig8b_throughput_vs_docs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_throughput_vs_docs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
