file(REMOVE_RECURSE
  "CMakeFiles/fig5_doc_frequency.dir/fig5_doc_frequency.cpp.o"
  "CMakeFiles/fig5_doc_frequency.dir/fig5_doc_frequency.cpp.o.d"
  "fig5_doc_frequency"
  "fig5_doc_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_doc_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
