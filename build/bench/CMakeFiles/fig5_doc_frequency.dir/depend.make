# Empty dependencies file for fig5_doc_frequency.
# This may be replaced when dependencies are built.
