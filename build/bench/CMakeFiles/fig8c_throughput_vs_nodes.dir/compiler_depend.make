# Empty compiler generated dependencies file for fig8c_throughput_vs_nodes.
# This may be replaced when dependencies are built.
