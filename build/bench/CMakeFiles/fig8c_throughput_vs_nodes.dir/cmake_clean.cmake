file(REMOVE_RECURSE
  "CMakeFiles/fig8c_throughput_vs_nodes.dir/fig8c_throughput_vs_nodes.cpp.o"
  "CMakeFiles/fig8c_throughput_vs_nodes.dir/fig8c_throughput_vs_nodes.cpp.o.d"
  "fig8c_throughput_vs_nodes"
  "fig8c_throughput_vs_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8c_throughput_vs_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
