# Empty compiler generated dependencies file for fig9c_failure_throughput.
# This may be replaced when dependencies are built.
