file(REMOVE_RECURSE
  "CMakeFiles/fig9c_failure_throughput.dir/fig9c_failure_throughput.cpp.o"
  "CMakeFiles/fig9c_failure_throughput.dir/fig9c_failure_throughput.cpp.o.d"
  "fig9c_failure_throughput"
  "fig9c_failure_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9c_failure_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
