# Empty dependencies file for fig4_filter_popularity.
# This may be replaced when dependencies are built.
