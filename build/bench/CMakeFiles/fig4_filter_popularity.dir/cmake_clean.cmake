file(REMOVE_RECURSE
  "CMakeFiles/fig4_filter_popularity.dir/fig4_filter_popularity.cpp.o"
  "CMakeFiles/fig4_filter_popularity.dir/fig4_filter_popularity.cpp.o.d"
  "fig4_filter_popularity"
  "fig4_filter_popularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_filter_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
