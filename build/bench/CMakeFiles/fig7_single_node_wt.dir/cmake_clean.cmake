file(REMOVE_RECURSE
  "CMakeFiles/fig7_single_node_wt.dir/fig7_single_node_wt.cpp.o"
  "CMakeFiles/fig7_single_node_wt.dir/fig7_single_node_wt.cpp.o.d"
  "fig7_single_node_wt"
  "fig7_single_node_wt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_single_node_wt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
