# Empty compiler generated dependencies file for fig7_single_node_wt.
# This may be replaced when dependencies are built.
