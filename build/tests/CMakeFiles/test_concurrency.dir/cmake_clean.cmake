file(REMOVE_RECURSE
  "CMakeFiles/test_concurrency.dir/common/thread_pool_test.cpp.o"
  "CMakeFiles/test_concurrency.dir/common/thread_pool_test.cpp.o.d"
  "CMakeFiles/test_concurrency.dir/index/match_batch_property_test.cpp.o"
  "CMakeFiles/test_concurrency.dir/index/match_batch_property_test.cpp.o.d"
  "CMakeFiles/test_concurrency.dir/index/parallel_matcher_test.cpp.o"
  "CMakeFiles/test_concurrency.dir/index/parallel_matcher_test.cpp.o.d"
  "test_concurrency"
  "test_concurrency.pdb"
  "test_concurrency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
