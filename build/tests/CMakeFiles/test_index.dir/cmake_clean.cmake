file(REMOVE_RECURSE
  "CMakeFiles/test_index.dir/index/filter_store_test.cpp.o"
  "CMakeFiles/test_index.dir/index/filter_store_test.cpp.o.d"
  "CMakeFiles/test_index.dir/index/inverted_index_test.cpp.o"
  "CMakeFiles/test_index.dir/index/inverted_index_test.cpp.o.d"
  "CMakeFiles/test_index.dir/index/scored_match_test.cpp.o"
  "CMakeFiles/test_index.dir/index/scored_match_test.cpp.o.d"
  "CMakeFiles/test_index.dir/index/sift_matcher_test.cpp.o"
  "CMakeFiles/test_index.dir/index/sift_matcher_test.cpp.o.d"
  "test_index"
  "test_index.pdb"
  "test_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
