
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/adaptive_test.cpp" "tests/CMakeFiles/test_core.dir/core/adaptive_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/adaptive_test.cpp.o.d"
  "/root/repo/tests/core/allocation_test.cpp" "tests/CMakeFiles/test_core.dir/core/allocation_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/allocation_test.cpp.o.d"
  "/root/repo/tests/core/experiment_test.cpp" "tests/CMakeFiles/test_core.dir/core/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/experiment_test.cpp.o.d"
  "/root/repo/tests/core/failure_test.cpp" "tests/CMakeFiles/test_core.dir/core/failure_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/failure_test.cpp.o.d"
  "/root/repo/tests/core/forwarding_table_test.cpp" "tests/CMakeFiles/test_core.dir/core/forwarding_table_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/forwarding_table_test.cpp.o.d"
  "/root/repo/tests/core/membership_test.cpp" "tests/CMakeFiles/test_core.dir/core/membership_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/membership_test.cpp.o.d"
  "/root/repo/tests/core/scheme_test.cpp" "tests/CMakeFiles/test_core.dir/core/scheme_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/scheme_test.cpp.o.d"
  "/root/repo/tests/core/stairs_test.cpp" "tests/CMakeFiles/test_core.dir/core/stairs_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/stairs_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/move_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/move_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/move_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/move_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/move_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/move_index.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/move_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/move_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/move_common.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/move_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
