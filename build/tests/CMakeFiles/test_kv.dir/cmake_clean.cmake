file(REMOVE_RECURSE
  "CMakeFiles/test_kv.dir/kv/gossip_test.cpp.o"
  "CMakeFiles/test_kv.dir/kv/gossip_test.cpp.o.d"
  "CMakeFiles/test_kv.dir/kv/kv_store_test.cpp.o"
  "CMakeFiles/test_kv.dir/kv/kv_store_test.cpp.o.d"
  "CMakeFiles/test_kv.dir/kv/placement_test.cpp.o"
  "CMakeFiles/test_kv.dir/kv/placement_test.cpp.o.d"
  "CMakeFiles/test_kv.dir/kv/ring_balance_test.cpp.o"
  "CMakeFiles/test_kv.dir/kv/ring_balance_test.cpp.o.d"
  "CMakeFiles/test_kv.dir/kv/ring_test.cpp.o"
  "CMakeFiles/test_kv.dir/kv/ring_test.cpp.o.d"
  "test_kv"
  "test_kv.pdb"
  "test_kv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
