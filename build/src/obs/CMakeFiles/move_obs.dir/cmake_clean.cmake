file(REMOVE_RECURSE
  "CMakeFiles/move_obs.dir/export.cpp.o"
  "CMakeFiles/move_obs.dir/export.cpp.o.d"
  "CMakeFiles/move_obs.dir/json.cpp.o"
  "CMakeFiles/move_obs.dir/json.cpp.o.d"
  "CMakeFiles/move_obs.dir/metrics.cpp.o"
  "CMakeFiles/move_obs.dir/metrics.cpp.o.d"
  "libmove_obs.a"
  "libmove_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/move_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
