# Empty dependencies file for move_obs.
# This may be replaced when dependencies are built.
