file(REMOVE_RECURSE
  "libmove_obs.a"
)
