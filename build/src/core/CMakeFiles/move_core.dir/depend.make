# Empty dependencies file for move_core.
# This may be replaced when dependencies are built.
