file(REMOVE_RECURSE
  "CMakeFiles/move_core.dir/adaptive.cpp.o"
  "CMakeFiles/move_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/move_core.dir/allocation.cpp.o"
  "CMakeFiles/move_core.dir/allocation.cpp.o.d"
  "CMakeFiles/move_core.dir/experiment.cpp.o"
  "CMakeFiles/move_core.dir/experiment.cpp.o.d"
  "CMakeFiles/move_core.dir/forwarding_table.cpp.o"
  "CMakeFiles/move_core.dir/forwarding_table.cpp.o.d"
  "CMakeFiles/move_core.dir/il_scheme.cpp.o"
  "CMakeFiles/move_core.dir/il_scheme.cpp.o.d"
  "CMakeFiles/move_core.dir/move_scheme.cpp.o"
  "CMakeFiles/move_core.dir/move_scheme.cpp.o.d"
  "CMakeFiles/move_core.dir/rs_scheme.cpp.o"
  "CMakeFiles/move_core.dir/rs_scheme.cpp.o.d"
  "CMakeFiles/move_core.dir/scheme.cpp.o"
  "CMakeFiles/move_core.dir/scheme.cpp.o.d"
  "CMakeFiles/move_core.dir/stairs_scheme.cpp.o"
  "CMakeFiles/move_core.dir/stairs_scheme.cpp.o.d"
  "libmove_core.a"
  "libmove_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/move_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
