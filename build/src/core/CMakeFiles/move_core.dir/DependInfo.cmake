
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/move_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/move_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/allocation.cpp" "src/core/CMakeFiles/move_core.dir/allocation.cpp.o" "gcc" "src/core/CMakeFiles/move_core.dir/allocation.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/move_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/move_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/forwarding_table.cpp" "src/core/CMakeFiles/move_core.dir/forwarding_table.cpp.o" "gcc" "src/core/CMakeFiles/move_core.dir/forwarding_table.cpp.o.d"
  "/root/repo/src/core/il_scheme.cpp" "src/core/CMakeFiles/move_core.dir/il_scheme.cpp.o" "gcc" "src/core/CMakeFiles/move_core.dir/il_scheme.cpp.o.d"
  "/root/repo/src/core/move_scheme.cpp" "src/core/CMakeFiles/move_core.dir/move_scheme.cpp.o" "gcc" "src/core/CMakeFiles/move_core.dir/move_scheme.cpp.o.d"
  "/root/repo/src/core/rs_scheme.cpp" "src/core/CMakeFiles/move_core.dir/rs_scheme.cpp.o" "gcc" "src/core/CMakeFiles/move_core.dir/rs_scheme.cpp.o.d"
  "/root/repo/src/core/scheme.cpp" "src/core/CMakeFiles/move_core.dir/scheme.cpp.o" "gcc" "src/core/CMakeFiles/move_core.dir/scheme.cpp.o.d"
  "/root/repo/src/core/stairs_scheme.cpp" "src/core/CMakeFiles/move_core.dir/stairs_scheme.cpp.o" "gcc" "src/core/CMakeFiles/move_core.dir/stairs_scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/move_common.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/move_index.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/move_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/move_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/move_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/move_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/move_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/move_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
