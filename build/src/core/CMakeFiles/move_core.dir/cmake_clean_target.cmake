file(REMOVE_RECURSE
  "libmove_core.a"
)
