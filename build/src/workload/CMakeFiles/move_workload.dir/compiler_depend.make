# Empty compiler generated dependencies file for move_workload.
# This may be replaced when dependencies are built.
