file(REMOVE_RECURSE
  "CMakeFiles/move_workload.dir/corpus.cpp.o"
  "CMakeFiles/move_workload.dir/corpus.cpp.o.d"
  "CMakeFiles/move_workload.dir/query_trace.cpp.o"
  "CMakeFiles/move_workload.dir/query_trace.cpp.o.d"
  "CMakeFiles/move_workload.dir/term_set_table.cpp.o"
  "CMakeFiles/move_workload.dir/term_set_table.cpp.o.d"
  "CMakeFiles/move_workload.dir/trace_io.cpp.o"
  "CMakeFiles/move_workload.dir/trace_io.cpp.o.d"
  "CMakeFiles/move_workload.dir/trace_stats.cpp.o"
  "CMakeFiles/move_workload.dir/trace_stats.cpp.o.d"
  "libmove_workload.a"
  "libmove_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/move_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
