file(REMOVE_RECURSE
  "libmove_workload.a"
)
