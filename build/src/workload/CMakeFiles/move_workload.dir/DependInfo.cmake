
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/corpus.cpp" "src/workload/CMakeFiles/move_workload.dir/corpus.cpp.o" "gcc" "src/workload/CMakeFiles/move_workload.dir/corpus.cpp.o.d"
  "/root/repo/src/workload/query_trace.cpp" "src/workload/CMakeFiles/move_workload.dir/query_trace.cpp.o" "gcc" "src/workload/CMakeFiles/move_workload.dir/query_trace.cpp.o.d"
  "/root/repo/src/workload/term_set_table.cpp" "src/workload/CMakeFiles/move_workload.dir/term_set_table.cpp.o" "gcc" "src/workload/CMakeFiles/move_workload.dir/term_set_table.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/workload/CMakeFiles/move_workload.dir/trace_io.cpp.o" "gcc" "src/workload/CMakeFiles/move_workload.dir/trace_io.cpp.o.d"
  "/root/repo/src/workload/trace_stats.cpp" "src/workload/CMakeFiles/move_workload.dir/trace_stats.cpp.o" "gcc" "src/workload/CMakeFiles/move_workload.dir/trace_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/move_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
