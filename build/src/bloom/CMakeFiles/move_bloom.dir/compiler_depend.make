# Empty compiler generated dependencies file for move_bloom.
# This may be replaced when dependencies are built.
