file(REMOVE_RECURSE
  "CMakeFiles/move_bloom.dir/bloom_filter.cpp.o"
  "CMakeFiles/move_bloom.dir/bloom_filter.cpp.o.d"
  "libmove_bloom.a"
  "libmove_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/move_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
