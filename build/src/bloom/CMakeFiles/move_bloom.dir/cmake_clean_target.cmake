file(REMOVE_RECURSE
  "libmove_bloom.a"
)
