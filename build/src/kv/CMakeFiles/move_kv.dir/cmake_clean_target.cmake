file(REMOVE_RECURSE
  "libmove_kv.a"
)
