# Empty dependencies file for move_kv.
# This may be replaced when dependencies are built.
