
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kv/gossip.cpp" "src/kv/CMakeFiles/move_kv.dir/gossip.cpp.o" "gcc" "src/kv/CMakeFiles/move_kv.dir/gossip.cpp.o.d"
  "/root/repo/src/kv/kv_store.cpp" "src/kv/CMakeFiles/move_kv.dir/kv_store.cpp.o" "gcc" "src/kv/CMakeFiles/move_kv.dir/kv_store.cpp.o.d"
  "/root/repo/src/kv/placement.cpp" "src/kv/CMakeFiles/move_kv.dir/placement.cpp.o" "gcc" "src/kv/CMakeFiles/move_kv.dir/placement.cpp.o.d"
  "/root/repo/src/kv/ring.cpp" "src/kv/CMakeFiles/move_kv.dir/ring.cpp.o" "gcc" "src/kv/CMakeFiles/move_kv.dir/ring.cpp.o.d"
  "/root/repo/src/kv/topology.cpp" "src/kv/CMakeFiles/move_kv.dir/topology.cpp.o" "gcc" "src/kv/CMakeFiles/move_kv.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/move_common.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/move_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
