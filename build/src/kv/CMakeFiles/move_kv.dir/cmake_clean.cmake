file(REMOVE_RECURSE
  "CMakeFiles/move_kv.dir/gossip.cpp.o"
  "CMakeFiles/move_kv.dir/gossip.cpp.o.d"
  "CMakeFiles/move_kv.dir/kv_store.cpp.o"
  "CMakeFiles/move_kv.dir/kv_store.cpp.o.d"
  "CMakeFiles/move_kv.dir/placement.cpp.o"
  "CMakeFiles/move_kv.dir/placement.cpp.o.d"
  "CMakeFiles/move_kv.dir/ring.cpp.o"
  "CMakeFiles/move_kv.dir/ring.cpp.o.d"
  "CMakeFiles/move_kv.dir/topology.cpp.o"
  "CMakeFiles/move_kv.dir/topology.cpp.o.d"
  "libmove_kv.a"
  "libmove_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/move_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
