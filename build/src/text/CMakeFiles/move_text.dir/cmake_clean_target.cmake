file(REMOVE_RECURSE
  "libmove_text.a"
)
