file(REMOVE_RECURSE
  "CMakeFiles/move_text.dir/pipeline.cpp.o"
  "CMakeFiles/move_text.dir/pipeline.cpp.o.d"
  "CMakeFiles/move_text.dir/porter.cpp.o"
  "CMakeFiles/move_text.dir/porter.cpp.o.d"
  "CMakeFiles/move_text.dir/stopwords.cpp.o"
  "CMakeFiles/move_text.dir/stopwords.cpp.o.d"
  "CMakeFiles/move_text.dir/tokenizer.cpp.o"
  "CMakeFiles/move_text.dir/tokenizer.cpp.o.d"
  "CMakeFiles/move_text.dir/vocabulary.cpp.o"
  "CMakeFiles/move_text.dir/vocabulary.cpp.o.d"
  "libmove_text.a"
  "libmove_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/move_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
