# Empty compiler generated dependencies file for move_text.
# This may be replaced when dependencies are built.
