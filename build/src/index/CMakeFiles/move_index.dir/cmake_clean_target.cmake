file(REMOVE_RECURSE
  "libmove_index.a"
)
