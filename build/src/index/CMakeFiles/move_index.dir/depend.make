# Empty dependencies file for move_index.
# This may be replaced when dependencies are built.
