
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/brute_force.cpp" "src/index/CMakeFiles/move_index.dir/brute_force.cpp.o" "gcc" "src/index/CMakeFiles/move_index.dir/brute_force.cpp.o.d"
  "/root/repo/src/index/filter_store.cpp" "src/index/CMakeFiles/move_index.dir/filter_store.cpp.o" "gcc" "src/index/CMakeFiles/move_index.dir/filter_store.cpp.o.d"
  "/root/repo/src/index/inverted_index.cpp" "src/index/CMakeFiles/move_index.dir/inverted_index.cpp.o" "gcc" "src/index/CMakeFiles/move_index.dir/inverted_index.cpp.o.d"
  "/root/repo/src/index/parallel_matcher.cpp" "src/index/CMakeFiles/move_index.dir/parallel_matcher.cpp.o" "gcc" "src/index/CMakeFiles/move_index.dir/parallel_matcher.cpp.o.d"
  "/root/repo/src/index/scored_match.cpp" "src/index/CMakeFiles/move_index.dir/scored_match.cpp.o" "gcc" "src/index/CMakeFiles/move_index.dir/scored_match.cpp.o.d"
  "/root/repo/src/index/sift_matcher.cpp" "src/index/CMakeFiles/move_index.dir/sift_matcher.cpp.o" "gcc" "src/index/CMakeFiles/move_index.dir/sift_matcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/move_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/move_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/move_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
