file(REMOVE_RECURSE
  "CMakeFiles/move_index.dir/brute_force.cpp.o"
  "CMakeFiles/move_index.dir/brute_force.cpp.o.d"
  "CMakeFiles/move_index.dir/filter_store.cpp.o"
  "CMakeFiles/move_index.dir/filter_store.cpp.o.d"
  "CMakeFiles/move_index.dir/inverted_index.cpp.o"
  "CMakeFiles/move_index.dir/inverted_index.cpp.o.d"
  "CMakeFiles/move_index.dir/parallel_matcher.cpp.o"
  "CMakeFiles/move_index.dir/parallel_matcher.cpp.o.d"
  "CMakeFiles/move_index.dir/scored_match.cpp.o"
  "CMakeFiles/move_index.dir/scored_match.cpp.o.d"
  "CMakeFiles/move_index.dir/sift_matcher.cpp.o"
  "CMakeFiles/move_index.dir/sift_matcher.cpp.o.d"
  "libmove_index.a"
  "libmove_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/move_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
