# Empty compiler generated dependencies file for move_cluster.
# This may be replaced when dependencies are built.
