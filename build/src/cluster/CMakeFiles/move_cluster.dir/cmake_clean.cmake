file(REMOVE_RECURSE
  "CMakeFiles/move_cluster.dir/cluster.cpp.o"
  "CMakeFiles/move_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/move_cluster.dir/meta_store.cpp.o"
  "CMakeFiles/move_cluster.dir/meta_store.cpp.o.d"
  "CMakeFiles/move_cluster.dir/storage_node.cpp.o"
  "CMakeFiles/move_cluster.dir/storage_node.cpp.o.d"
  "libmove_cluster.a"
  "libmove_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/move_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
