file(REMOVE_RECURSE
  "libmove_cluster.a"
)
