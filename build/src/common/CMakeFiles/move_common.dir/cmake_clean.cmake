file(REMOVE_RECURSE
  "CMakeFiles/move_common.dir/flags.cpp.o"
  "CMakeFiles/move_common.dir/flags.cpp.o.d"
  "CMakeFiles/move_common.dir/hash.cpp.o"
  "CMakeFiles/move_common.dir/hash.cpp.o.d"
  "CMakeFiles/move_common.dir/log.cpp.o"
  "CMakeFiles/move_common.dir/log.cpp.o.d"
  "CMakeFiles/move_common.dir/rng.cpp.o"
  "CMakeFiles/move_common.dir/rng.cpp.o.d"
  "CMakeFiles/move_common.dir/stats.cpp.o"
  "CMakeFiles/move_common.dir/stats.cpp.o.d"
  "CMakeFiles/move_common.dir/thread_pool.cpp.o"
  "CMakeFiles/move_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/move_common.dir/zipf.cpp.o"
  "CMakeFiles/move_common.dir/zipf.cpp.o.d"
  "libmove_common.a"
  "libmove_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/move_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
