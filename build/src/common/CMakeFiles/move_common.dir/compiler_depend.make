# Empty compiler generated dependencies file for move_common.
# This may be replaced when dependencies are built.
