file(REMOVE_RECURSE
  "libmove_common.a"
)
