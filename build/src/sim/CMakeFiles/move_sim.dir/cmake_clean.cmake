file(REMOVE_RECURSE
  "CMakeFiles/move_sim.dir/cost_model.cpp.o"
  "CMakeFiles/move_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/move_sim.dir/event_engine.cpp.o"
  "CMakeFiles/move_sim.dir/event_engine.cpp.o.d"
  "CMakeFiles/move_sim.dir/metrics.cpp.o"
  "CMakeFiles/move_sim.dir/metrics.cpp.o.d"
  "libmove_sim.a"
  "libmove_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/move_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
