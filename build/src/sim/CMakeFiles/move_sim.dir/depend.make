# Empty dependencies file for move_sim.
# This may be replaced when dependencies are built.
