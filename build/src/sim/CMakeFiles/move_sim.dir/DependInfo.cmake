
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/move_sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/move_sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/event_engine.cpp" "src/sim/CMakeFiles/move_sim.dir/event_engine.cpp.o" "gcc" "src/sim/CMakeFiles/move_sim.dir/event_engine.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/move_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/move_sim.dir/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/move_common.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/move_index.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/move_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/move_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
