file(REMOVE_RECURSE
  "libmove_sim.a"
)
