# Empty dependencies file for news_alerts.
# This may be replaced when dependencies are built.
