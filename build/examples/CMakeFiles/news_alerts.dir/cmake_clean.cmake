file(REMOVE_RECURSE
  "CMakeFiles/news_alerts.dir/news_alerts.cpp.o"
  "CMakeFiles/news_alerts.dir/news_alerts.cpp.o.d"
  "news_alerts"
  "news_alerts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_alerts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
