file(REMOVE_RECURSE
  "CMakeFiles/move_cli.dir/move_cli.cpp.o"
  "CMakeFiles/move_cli.dir/move_cli.cpp.o.d"
  "move_cli"
  "move_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/move_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
