# Empty compiler generated dependencies file for move_cli.
# This may be replaced when dependencies are built.
