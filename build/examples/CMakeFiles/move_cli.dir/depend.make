# Empty dependencies file for move_cli.
# This may be replaced when dependencies are built.
