file(REMOVE_RECURSE
  "CMakeFiles/rss_dashboard.dir/rss_dashboard.cpp.o"
  "CMakeFiles/rss_dashboard.dir/rss_dashboard.cpp.o.d"
  "rss_dashboard"
  "rss_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rss_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
