# Empty compiler generated dependencies file for rss_dashboard.
# This may be replaced when dependencies are built.
